"""Tests for the serving-path execution engine (plan cache, arena, façade).

Covers the cache's hit/miss/eviction semantics (count and byte budgets),
arena reuse and alignment, correctness of the fused fast path against
the reference pipeline and direct convolution (2D/3D, crop and no-crop),
the blocked mode, wisdom persistence, and the bit-compatibility of the
vectorized stage 2 against the traced JIT-kernel loop in float64.
"""

import numpy as np
import pytest

from repro.core.blocked_pipeline import BlockedWinogradExecutor
from repro.core.blocking import BlockingConfig
from repro.core.convolution import WinogradPlan, winograd_convolution
from repro.core.engine import (
    ConvolutionEngine,
    PlanCache,
    PlanKey,
    WorkspaceArena,
    kernel_fingerprint,
)
from repro.core.fmr import FmrSpec
from repro.nets.reference import direct_convolution
from repro.util.wisdom import Wisdom

RNG = np.random.default_rng(42)
BLK = BlockingConfig(n_blk=6, c_blk=32, cprime_blk=32)


def _key(size=10, c=16, cp=16, spec=None, dtype="float32", blocking=None):
    return PlanKey(
        spec=spec or FmrSpec(m=(2, 2), r=(3, 3)),
        input_shape=(1, c, size, size),
        c_out=cp,
        padding=(1, 1),
        dtype=dtype,
        blocking=blocking,
    )


class TestPlanCache:
    def test_hit_miss_counting(self):
        cache = PlanCache()
        k = _key()
        e1 = cache.get_or_create(k)
        e2 = cache.get_or_create(k)
        assert e1 is e2
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_distinct_keys_are_distinct_plans(self):
        cache = PlanCache()
        e1 = cache.get_or_create(_key(size=10))
        e2 = cache.get_or_create(_key(size=12))
        assert e1 is not e2
        assert cache.stats.misses == 2

    def test_lru_eviction_by_count(self):
        cache = PlanCache(max_plans=2)
        k1, k2, k3 = _key(size=8), _key(size=10), _key(size=12)
        cache.get_or_create(k1)
        cache.get_or_create(k2)
        cache.get_or_create(k1)  # touch k1: k2 becomes LRU
        cache.get_or_create(k3)
        assert cache.stats.evictions == 1
        assert k1 in cache and k3 in cache
        assert k2 not in cache

    def test_eviction_under_byte_budget(self):
        cache = PlanCache(max_plans=100, max_bytes=1)
        cache.get_or_create(_key(size=8))
        cache.get_or_create(_key(size=10))
        # The sole most-recent resident is never evicted, so exactly one
        # plan survives a 1-byte budget.
        assert len(cache) == 1
        assert cache.stats.evictions == 1
        assert cache.stats.bytes_cached > 0

    def test_kernel_transform_memoized_by_fingerprint(self):
        cache = PlanCache()
        entry = cache.get_or_create(_key())
        ker = RNG.standard_normal((16, 16, 3, 3)).astype(np.float32)
        w1 = cache.kernel_transform(entry, ker)
        w2 = cache.kernel_transform(entry, ker.copy())  # equal content
        assert w1 is w2
        assert cache.stats.kernel_hits == 1
        w3 = cache.kernel_transform(entry, ker * 2.0)
        assert w3 is not w1
        assert cache.stats.kernel_misses == 2

    def test_fingerprint_sensitivity(self):
        a = RNG.standard_normal((4, 4, 3, 3)).astype(np.float32)
        assert kernel_fingerprint(a) == kernel_fingerprint(a.copy())
        assert kernel_fingerprint(a) != kernel_fingerprint(a.astype(np.float64))
        b = a.copy()
        b[0, 0, 0, 0] += 1
        assert kernel_fingerprint(a) != kernel_fingerprint(b)

    def test_clear(self):
        cache = PlanCache()
        cache.get_or_create(_key())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.bytes_cached == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PlanCache(max_plans=0)
        with pytest.raises(ValueError):
            PlanCache(max_bytes=0)


class TestWorkspaceArena:
    def test_lease_views_are_aligned_and_disjoint(self):
        arena = WorkspaceArena(alignment=64)
        with arena.lease(1 << 16) as lease:
            a = lease.take((100,), np.float32)
            b = lease.take((7, 11), np.float64)
            assert a.ctypes.data % 64 == 0
            assert b.ctypes.data % 64 == 0
            a[:] = 1.0
            b[:] = 2.0
            assert np.all(a == 1.0) and np.all(b == 2.0)  # no overlap

    def test_buffer_reused_across_leases(self):
        arena = WorkspaceArena()
        with arena.lease(4096) as lease:
            addr1 = lease.take((16,), np.float32).ctypes.data
        with arena.lease(4096) as lease:
            addr2 = lease.take((16,), np.float32).ctypes.data
        assert addr1 == addr2
        assert arena.grows == 1
        assert arena.leases == 2

    def test_arena_grows_monotonically(self):
        arena = WorkspaceArena()
        with arena.lease(1024):
            pass
        small = arena.capacity_bytes
        with arena.lease(1 << 20):
            pass
        assert arena.capacity_bytes >= 1 << 20 > small
        # A later small lease does not shrink capacity.
        with arena.lease(256):
            pass
        assert arena.capacity_bytes >= 1 << 20

    def test_overcommit_raises(self):
        arena = WorkspaceArena()
        with arena.lease(1024) as lease:
            with pytest.raises(MemoryError):
                lease.take((1 << 22,), np.float64)

    def test_concurrent_leases_are_isolated(self):
        arena = WorkspaceArena()
        with arena.lease(4096) as l1, arena.lease(4096) as l2:
            a = l1.take((64,), np.float32)
            b = l2.take((64,), np.float32)
            a[:] = 1.0
            b[:] = 2.0
            assert np.all(a == 1.0)

    def test_mixed_size_pool_reacquire(self):
        """Regression: acquiring from a pool holding buffers of
        *different* sizes must not compare ndarrays by value (the old
        ``list.remove`` path broadcast-compared a stale pre-growth
        buffer against the grown one and raised ValueError)."""
        arena = WorkspaceArena()
        with arena.lease(1000):          # allocates the small buffer
            with arena.lease(50000):     # concurrent -> second, larger buffer
                pass
        # Pool now holds [small, large]; the next acquire must pick and
        # pop the large one without touching the small one.
        with arena.lease(50000) as lease:
            lease.take((50000,), np.uint8)
        assert arena.grows == 2  # no fresh allocation on the reacquire


class TestEngineCorrectness:
    def _compare(self, engine, img, ker, padding, **kwargs):
        y = engine.run(img, ker, padding=padding, **kwargs)
        ref = direct_convolution(
            img.astype(np.float64), ker.astype(np.float64), padding
        )
        assert y.shape == ref.shape
        relerr = np.abs(y - ref).max() / np.abs(ref).max()
        assert relerr < 1e-3, relerr
        return y

    def test_2d_with_padding_and_crop(self):
        # 30x30 output with m=4 -> grid padding + crop path.
        engine = ConvolutionEngine()
        img = RNG.standard_normal((2, 16, 30, 30)).astype(np.float32)
        ker = RNG.standard_normal((16, 16, 3, 3)).astype(np.float32)
        self._compare(engine, img, ker, (1, 1))

    def test_2d_no_crop(self):
        engine = ConvolutionEngine()
        img = RNG.standard_normal((1, 8, 10, 10)).astype(np.float32)
        ker = RNG.standard_normal((8, 8, 3, 3)).astype(np.float32)
        self._compare(engine, img, ker, (1, 1), fmr="F(2x2,3x3)")

    def test_3d(self):
        engine = ConvolutionEngine()
        img = RNG.standard_normal((1, 4, 8, 8, 8)).astype(np.float32)
        ker = RNG.standard_normal((4, 8, 3, 3, 3)).astype(np.float32)
        self._compare(engine, img, ker, (0, 0, 0))

    def test_matches_one_shot_winograd_for_pinned_spec(self):
        engine = ConvolutionEngine()
        img = RNG.standard_normal((1, 8, 12, 12)).astype(np.float32)
        ker = RNG.standard_normal((8, 8, 3, 3)).astype(np.float32)
        y_engine = engine.run(img, ker, fmr="F(2x2,3x3)", padding=(1, 1))
        y_ref = winograd_convolution(img, ker, fmr="F(2x2,3x3)", padding=(1, 1))
        # Same linear map, different association order (Kronecker-fused
        # transforms) -- equal to float tolerance, not bitwise.
        np.testing.assert_allclose(y_engine, y_ref, rtol=1e-4, atol=1e-5)

    def test_out_parameter(self):
        engine = ConvolutionEngine()
        img = RNG.standard_normal((1, 8, 10, 10)).astype(np.float32)
        ker = RNG.standard_normal((8, 8, 3, 3)).astype(np.float32)
        y = engine.run(img, ker, padding=(1, 1))
        out = np.empty_like(y)
        y2 = engine.run(img, ker, padding=(1, 1), out=out)
        assert y2 is out
        np.testing.assert_array_equal(out, y)
        with pytest.raises(ValueError):
            engine.run(img, ker, padding=(1, 1), out=np.empty((1, 8, 3, 3), np.float32))

    def test_float64(self):
        engine = ConvolutionEngine()
        img = RNG.standard_normal((1, 8, 10, 10))
        ker = RNG.standard_normal((8, 8, 3, 3))
        y = engine.run(img, ker, padding=(1, 1), dtype=np.float64)
        ref = direct_convolution(img, ker, (1, 1))
        np.testing.assert_allclose(y, ref, rtol=1e-10)

    def test_repeated_runs_are_deterministic(self):
        engine = ConvolutionEngine()
        img = RNG.standard_normal((1, 8, 12, 12)).astype(np.float32)
        ker = RNG.standard_normal((8, 8, 3, 3)).astype(np.float32)
        y1 = engine.run(img, ker, padding=(1, 1))
        y2 = engine.run(img, ker, padding=(1, 1))
        np.testing.assert_array_equal(y1, y2)  # arena recycling is clean

    def test_blocked_mode(self):
        engine = ConvolutionEngine()
        img = RNG.standard_normal((1, 32, 12, 12)).astype(np.float32)
        ker = RNG.standard_normal((32, 32, 3, 3)).astype(np.float32)
        y = self._compare(
            engine, img, ker, (1, 1), fmr="F(2x2,3x3)", blocked=True, blocking=BLK
        )
        y2 = engine.run(
            img, ker, fmr="F(2x2,3x3)", padding=(1, 1), blocked=True, blocking=BLK
        )
        np.testing.assert_array_equal(y, y2)  # second run hits the cache
        assert engine.plans.stats.hits >= 1

    def test_blocking_without_blocked_rejected(self):
        engine = ConvolutionEngine()
        img = RNG.standard_normal((1, 16, 8, 8)).astype(np.float32)
        ker = RNG.standard_normal((16, 16, 3, 3)).astype(np.float32)
        with pytest.raises(ValueError):
            engine.run(img, ker, padding=(1, 1), blocking=BLK)


class TestEngineCaching:
    def test_plan_cache_hit_on_repeat(self):
        engine = ConvolutionEngine()
        img = RNG.standard_normal((1, 8, 10, 10)).astype(np.float32)
        ker = RNG.standard_normal((8, 8, 3, 3)).astype(np.float32)
        engine.run(img, ker, padding=(1, 1))
        engine.run(img, ker, padding=(1, 1))
        engine.run(img, ker, padding=(1, 1))
        s = engine.plans.stats
        assert s.misses == 1 and s.hits == 2
        assert s.kernel_misses == 1 and s.kernel_hits == 2
        assert engine.stats()["arena"]["grows"] == 1

    def test_tile_policy_fixed_picks_m4_for_vgg_shapes(self):
        engine = ConvolutionEngine()
        img = RNG.standard_normal((1, 8, 28, 28)).astype(np.float32)
        ker = RNG.standard_normal((8, 8, 3, 3)).astype(np.float32)
        engine.run(img, ker, padding=(1, 1))
        assert engine.plans.keys()[0].spec == FmrSpec(m=(4, 4), r=(3, 3))

    def test_tile_policy_fixed_conservative_for_tiny_outputs(self):
        engine = ConvolutionEngine()
        img = RNG.standard_normal((1, 4, 5, 5)).astype(np.float32)
        ker = RNG.standard_normal((4, 4, 3, 3)).astype(np.float32)
        engine.run(img, ker)  # 3x3 output: m=4 would be >50% padding waste
        assert engine.plans.keys()[0].spec == FmrSpec(m=(2, 2), r=(3, 3))

    def test_wisdom_round_trip(self, tmp_path):
        path = tmp_path / "wisdom.json"
        engine = ConvolutionEngine(wisdom_path=path)
        img = RNG.standard_normal((1, 32, 12, 12)).astype(np.float32)
        ker = RNG.standard_normal((32, 32, 3, 3)).astype(np.float32)
        engine.run(img, ker, fmr="F(2x2,3x3)", padding=(1, 1), blocked=True)
        assert len(engine.wisdom) == 1
        engine.save_wisdom()
        engine2 = ConvolutionEngine(wisdom_path=path)
        assert len(engine2.wisdom) == 1
        assert engine2.wisdom.keys() == engine.wisdom.keys()

    def test_save_wisdom_without_path_raises(self):
        with pytest.raises(ValueError):
            ConvolutionEngine().save_wisdom()

    def test_invalid_modes_rejected(self):
        with pytest.raises(ValueError):
            ConvolutionEngine(stage2_mode="warp")
        with pytest.raises(ValueError):
            ConvolutionEngine(tile_policy="vibes")


class TestWisdomMerge:
    def _entry(self, t):
        from repro.util.wisdom import WisdomEntry

        return WisdomEntry(
            n_blk=6, c_blk=32, cprime_blk=32, threads_per_core=1, predicted_time=t
        )

    def test_merge_prefers_faster(self):
        a, b = Wisdom(), Wisdom()
        a.put("k", self._entry(2.0))
        b.put("k", self._entry(1.0))
        b.put("only-b", self._entry(3.0))
        taken = a.merge(b)
        assert taken == 2
        assert a.get("k").predicted_time == 1.0
        assert "only-b" in a

    def test_merge_ours_keeps_existing(self):
        a, b = Wisdom(), Wisdom()
        a.put("k", self._entry(2.0))
        b.put("k", self._entry(1.0))
        assert a.merge(b, prefer="ours") == 0
        assert a.get("k").predicted_time == 2.0


class TestVectorizedStage2:
    def _setup(self, dtype):
        plan = WinogradPlan(
            spec=FmrSpec(m=(2, 2), r=(3, 3)),
            input_shape=(2, 64, 12, 12),
            c_out=64,
            padding=(1, 1),
            dtype=np.dtype(dtype),
        )
        ex = BlockedWinogradExecutor(plan=plan, blocking=BLK)
        img = RNG.standard_normal((2, 64, 12, 12)).astype(dtype)
        ker = RNG.standard_normal((64, 64, 3, 3)).astype(dtype)
        u = ex.transform_input_packed(ex.image_layout.pack(img))
        v = ex.transform_kernels_packed(ex.kernel_layout.pack(ker))
        return ex, u, v

    def test_bit_compatible_float64(self):
        """The acceptance criterion: vectorized == looped, bit for bit."""
        ex, u, v = self._setup(np.float64)
        x_traced = ex.multiply_packed(u, v, mode="traced")
        x_fast = ex.multiply_packed(u, v, mode="fast")
        assert np.array_equal(x_traced, x_fast)

    def test_bit_compatible_float32(self):
        ex, u, v = self._setup(np.float32)
        assert np.array_equal(
            ex.multiply_packed(u, v, mode="traced"),
            ex.multiply_packed(u, v, mode="fast"),
        )

    def test_out_parameter(self):
        ex, u, v = self._setup(np.float64)
        out = np.empty(ex.x_layout.stored_shape, np.float64)
        x = ex.multiply_packed(u, v, mode="fast", out=out)
        assert x is out
        assert np.array_equal(out, ex.multiply_packed(u, v, mode="traced"))
        with pytest.raises(ValueError):
            ex.multiply_packed(u, v, out=np.empty((3,), np.float64))

    def test_default_mode_is_traced(self):
        """The simulator-instrumented path stays the default; fast mode
        must be an explicit opt-in (executor field or per-call)."""
        ex, u, v = self._setup(np.float64)
        assert ex.stage2_mode == "traced"
        before = ex.jit.compile_count
        ex.multiply_packed(u, v)
        assert ex.jit.compile_count >= before  # went through the JIT cache

    def test_invalid_mode_rejected(self):
        ex, u, v = self._setup(np.float64)
        with pytest.raises(ValueError):
            ex.multiply_packed(u, v, mode="warp")
        with pytest.raises(ValueError):
            BlockedWinogradExecutor(plan=ex.plan, blocking=BLK, stage2_mode="warp")

    def test_fast_mode_executor_field(self):
        plan = WinogradPlan(
            spec=FmrSpec(m=(2, 2), r=(3, 3)),
            input_shape=(1, 32, 10, 10),
            c_out=32,
            padding=(1, 1),
            dtype=np.dtype(np.float32),
        )
        ex_fast = BlockedWinogradExecutor(plan=plan, blocking=BLK, stage2_mode="fast")
        ex_traced = BlockedWinogradExecutor(plan=plan, blocking=BLK)
        img = RNG.standard_normal((1, 32, 10, 10)).astype(np.float32)
        ker = RNG.standard_normal((32, 32, 3, 3)).astype(np.float32)
        np.testing.assert_array_equal(
            ex_fast.execute(img, ker), ex_traced.execute(img, ker)
        )


class TestTransformMemoization:
    def test_winograd_nd_is_memoized(self):
        from repro.core.transforms import winograd_nd

        spec = FmrSpec(m=(4, 4), r=(3, 3))
        assert winograd_nd(spec) is winograd_nd(spec)

    def test_as_arrays_memoized_and_readonly(self):
        from repro.core.transforms import winograd_1d

        t = winograd_1d(4, 3)
        a1, b1, g1 = t.as_arrays(np.float32)
        a2, _, _ = t.as_arrays(np.float32)
        assert a1 is a2
        assert not a1.flags.writeable
        a64, _, _ = t.as_arrays(np.float64)
        assert a64.dtype == np.float64

    def test_clear_compile_caches(self):
        from repro.core.engine import clear_compile_caches
        from repro.core.transforms import winograd_nd

        spec = FmrSpec(m=(2, 2), r=(3, 3))
        before = winograd_nd(spec)
        clear_compile_caches()
        after = winograd_nd(spec)
        assert before is not after
