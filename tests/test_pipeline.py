"""Tests for the vector-pipeline simulator."""

import pytest

from repro.machine.spec import KNL_7210, TITAN_X_PASCAL
from repro.machine.trace import Instr, InstrKind, MemLevel, fma, load, prefetch, store
from repro.machine.vector import simulate_pipeline


class TestBasics:
    def test_empty_trace(self):
        res = simulate_pipeline([], KNL_7210)
        assert res.cycles == 0
        assert res.fma_count == 0

    def test_single_fma(self):
        res = simulate_pipeline([fma("acc0", "a", "b")], KNL_7210)
        assert res.cycles == KNL_7210.fma_latency
        assert res.fma_count == 1

    def test_roofline_spec_rejected(self):
        with pytest.raises(ValueError, match="roofline"):
            simulate_pipeline([fma("x", "y")], TITAN_X_PASCAL)

    def test_invalid_instr(self):
        with pytest.raises(ValueError, match="destination"):
            Instr(InstrKind.LOAD)
        with pytest.raises(ValueError, match="source"):
            Instr(InstrKind.FMA, dst="x")


class TestLatencyHiding:
    def test_dependent_chain_stalls(self):
        """A chain of FMAs into the same accumulator pays full latency."""
        trace = [fma("acc", f"v{i}") for i in range(10)]
        res = simulate_pipeline(trace, KNL_7210)
        assert res.cycles == 10 * KNL_7210.fma_latency
        assert res.fma_throughput < 0.2

    def test_independent_streams_reach_peak(self):
        """With >= 2*latency independent accumulators both VPUs stay busy --
        the reason the paper requires n_blk >= 6 (Sec. 4.3.2)."""
        n_acc = 2 * KNL_7210.fma_latency  # 12 accumulators
        trace = []
        for _ in range(50):
            for j in range(n_acc):
                trace.append(fma(f"acc{j}", "v"))
        res = simulate_pipeline(trace, KNL_7210)
        assert res.fma_throughput > 1.9  # ~2 FMA/cycle

    def test_too_few_accumulators_starve(self):
        """n_blk < 6 cannot hide the 6-cycle FMA latency on 2 VPUs."""
        trace3 = []
        for _ in range(60):
            for j in range(3):
                trace3.append(fma(f"acc{j}", "v"))
        res3 = simulate_pipeline(trace3, KNL_7210)
        trace12 = []
        for _ in range(60):
            for j in range(12):
                trace12.append(fma(f"acc{j}", "v"))
        res12 = simulate_pipeline(trace12, KNL_7210)
        assert res3.fma_throughput < 0.7
        assert res12.fma_throughput > 1.9

    def test_load_latency_levels(self):
        """A dependent FMA waits for its load: L1 < L2 < MEM."""
        def run(level):
            return simulate_pipeline(
                [load("v", level), fma("acc", "v")], KNL_7210
            ).cycles

        assert run(MemLevel.L1) < run(MemLevel.L2) < run(MemLevel.MEM)

    def test_prefetch_hides_nothing_by_itself(self):
        """Prefetches consume a memory slot but create no dependencies."""
        res = simulate_pipeline([prefetch(), prefetch(), fma("a", "b")], KNL_7210)
        assert res.fma_count == 1


class TestStructuralHazards:
    def test_issue_width_limits(self):
        """At most issue_width instructions per cycle: 100 independent
        1-cycle stores need >= 50 cycles on the 2-wide front end."""
        trace = [store(f"v{i}") for i in range(100)]
        res = simulate_pipeline(trace, KNL_7210)
        assert res.cycles >= 50

    def test_two_vpus(self):
        """More than 2 FMAs per cycle is impossible."""
        trace = [fma(f"acc{i}", "v") for i in range(100)]
        res = simulate_pipeline(trace, KNL_7210)
        assert res.cycles >= 50 + KNL_7210.fma_latency - 1

    def test_mem_port_limit_shared_by_loads_and_stores(self):
        trace = []
        for i in range(30):
            trace.append(load(f"l{i}"))
            trace.append(store(f"l{i}"))
            trace.append(prefetch())
        res = simulate_pipeline(trace, KNL_7210)
        # 90 memory ops / 2 ports = at least 45 cycles.
        assert res.cycles >= 45

    def test_load_ahead_beats_load_on_use(self):
        """Fig. 4's pattern -- loading the (i+1)-th row of V *during* the
        FMAs of iteration i -- beats loading right before use, because a
        load immediately followed by its consumer stalls the in-order
        pipeline for the full L2 latency."""
        n_iter, n_rows = 8, 8

        def iteration_fmas(i):
            return [fma(f"acc{j}", f"v{i}") for j in range(n_rows)]

        naive = []
        for i in range(n_iter):
            naive.append(load(f"v{i}", MemLevel.L2))  # load-on-use
            naive.extend(iteration_fmas(i))

        ahead = [load("v0", MemLevel.L2)]
        for i in range(n_iter):
            body = iteration_fmas(i)
            if i + 1 < n_iter:
                # Interleave next iteration's load among this one's FMAs.
                body.insert(1, load(f"v{i + 1}", MemLevel.L2))
            ahead.extend(body)

        t_naive = simulate_pipeline(naive, KNL_7210).cycles
        t_ahead = simulate_pipeline(ahead, KNL_7210).cycles
        assert t_ahead < t_naive


class TestAccounting:
    def test_flops(self):
        res = simulate_pipeline([fma("a", "b")] * 4, KNL_7210)
        assert res.flops(16) == 4 * 2 * 16

    def test_seconds(self):
        res = simulate_pipeline([fma("a", "b")], KNL_7210)
        assert res.seconds(KNL_7210) == pytest.approx(
            KNL_7210.fma_latency / KNL_7210.frequency_hz
        )
