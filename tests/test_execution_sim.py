"""Tests for the discrete-event stage-execution simulator."""

import pytest

from repro.machine.execution_sim import (
    ExecutionReport,
    compare_policies,
    simulate_dynamic,
    simulate_static,
    uniform_duration,
)


class TestStatic:
    def test_even_grid_near_zero_idle(self):
        """The paper's ideal case: power-of-two grid, uniform tasks."""
        rep = simulate_static((64, 4, 8), 64, uniform_duration(1000.0))
        assert rep.idle_fraction < 0.02  # only the barrier epsilon
        assert rep.speedup > 60

    def test_uneven_grid_idles(self):
        """A coprime grid forces idle threads under static scheduling."""
        rep = simulate_static((7, 9), 4, uniform_duration(100.0))
        assert rep.idle_fraction > 0.02

    def test_span_includes_barrier(self):
        rep = simulate_static((8,), 8, uniform_duration(100.0),
                              barrier_cycles=500.0)
        assert rep.span_cycles == pytest.approx(100.0 + 500.0)

    def test_busy_equals_total(self):
        rep = simulate_static((5, 6), 3, uniform_duration(10.0))
        assert sum(rep.busy_cycles) == pytest.approx(rep.total_task_cycles)
        assert rep.total_task_cycles == pytest.approx(300.0)


class TestDynamic:
    def test_balances_heterogeneous_tasks(self):
        """Dynamic scheduling wins when task costs are skewed -- the
        regime the paper's 'grid of equal tasks' premise avoids."""

        def skewed(idx):
            return 1000.0 if idx[0] == 0 else 10.0

        static = simulate_static((4, 32), 4, skewed)
        dynamic = simulate_dynamic((4, 32), 4, skewed, chunk_tasks=4)
        assert dynamic.span_cycles < static.span_cycles

    def test_pays_dequeue_costs(self):
        rep = simulate_dynamic((64,), 4, uniform_duration(100.0),
                               chunk_tasks=8, dequeue_cycles=2000.0)
        assert rep.sync_cycles == pytest.approx(8 * 2000.0)

    def test_empty_grid_is_single_task(self):
        rep = simulate_dynamic((1,), 2, uniform_duration(5.0))
        assert rep.span_cycles > 0


class TestComparison:
    def test_static_wins_on_uniform_paper_workload(self):
        """The paper's setting: equal tasks, power-of-two grid -- the
        single barrier beats thousands of dequeues."""
        reports = compare_policies(
            (64, 4, 14, 14), 128, uniform_duration(200.0), chunk_tasks=8
        )
        assert reports["static"].span_cycles < reports["dynamic"].span_cycles
        assert reports["static"].idle_fraction < 0.02

    def test_report_types(self):
        reports = compare_policies((8, 8), 4, uniform_duration(10.0))
        for rep in reports.values():
            assert isinstance(rep, ExecutionReport)
            assert rep.n_threads == 4
