"""Tests for exact Winograd transform generation.

The cornerstone test is *exactness*: the generated A, B, G satisfy the
minimal-filtering identity over the rationals for every F(m, r), so any
floating-point discrepancy downstream is rounding, never algebra.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fmr import FmrSpec
from repro.core.transforms import (
    DEFAULT_POINTS,
    interpolation_points,
    mode_n_multiply,
    transform_tensor,
    winograd_1d,
    winograd_nd,
)


def exact_fir(d, g, m):
    """Reference F(m, r): y_k = sum_j d[k+j] g[j], exact Fractions."""
    r = len(g)
    return [sum(d[k + j] * g[j] for j in range(r)) for k in range(m)]


def exact_winograd(t, d, g):
    """Apply y = A[(G g) (.) (B d)] with exact Fraction arithmetic."""
    alpha = t.alpha
    gg = [sum(t.g[i][j] * g[j] for j in range(t.r)) for i in range(alpha)]
    bd = [sum(t.b[i][j] * d[j] for j in range(alpha)) for i in range(alpha)]
    prod = [gg[i] * bd[i] for i in range(alpha)]
    return [sum(t.a[k][i] * prod[i] for i in range(alpha)) for k in range(t.m)]


class TestExactIdentity:
    @pytest.mark.parametrize(
        "m, r",
        [(2, 3), (4, 3), (6, 3), (8, 3), (2, 2), (3, 4), (4, 4), (6, 5), (1, 3), (4, 1), (1, 1)],
    )
    def test_identity_fixed_inputs(self, m, r):
        t = winograd_1d(m, r)
        alpha = m + r - 1
        d = [Fraction(i * 7 - 3, 5) for i in range(alpha)]
        g = [Fraction(2 - i, 3) for i in range(r)]
        assert exact_winograd(t, d, g) == exact_fir(d, g, m)

    @settings(max_examples=60, deadline=None)
    @given(
        m=st.integers(1, 7),
        r=st.integers(1, 5),
        data=st.data(),
    )
    def test_identity_property(self, m, r, data):
        t = winograd_1d(m, r)
        alpha = m + r - 1
        ints = st.integers(-50, 50)
        d = [Fraction(data.draw(ints), 1 + abs(data.draw(ints))) for _ in range(alpha)]
        g = [Fraction(data.draw(ints), 1 + abs(data.draw(ints))) for _ in range(r)]
        assert exact_winograd(t, d, g) == exact_fir(d, g, m)

    def test_custom_points(self):
        pts = (Fraction(0), Fraction(1), Fraction(-1), Fraction(3))
        t = winograd_1d(3, 3, points=pts)
        d = [Fraction(i) for i in range(5)]
        g = [Fraction(1), Fraction(-2), Fraction(1)]
        assert exact_winograd(t, d, g) == exact_fir(d, g, 3)


class TestShapesAndStructure:
    def test_f23_matches_paper_structure(self):
        """F(2,3) matrices match the paper's Sec. 2.2 example up to
        equivalent paired sign flips."""
        t = winograd_1d(2, 3)
        a, b, g = t.as_arrays()
        assert a.shape == (2, 4)
        assert b.shape == (4, 4)
        assert g.shape == (4, 3)
        # G rows 1, 2 are the paper's (1/2, +-1/2, 1/2) rows exactly.
        assert t.g[1] == (Fraction(1, 2), Fraction(1, 2), Fraction(1, 2))
        assert t.g[2] == (Fraction(1, 2), Fraction(-1, 2), Fraction(1, 2))
        # 4 multiplications instead of 6 (Sec. 2.2).
        assert t.alpha == 4

    def test_b_is_integer_for_integer_points(self):
        """Folding Lagrange denominators into G keeps B integral when the
        points are integers -- the property that makes transform codelets
        cheap (adds and subtractions, few multiplies)."""
        pts = (Fraction(0), Fraction(1), Fraction(-1), Fraction(2), Fraction(-2))
        t = winograd_1d(4, 3, points=pts)
        for row in t.b:
            for x in row:
                assert x.denominator == 1

    def test_conditioning_grows_with_m(self):
        entries = [winograd_1d(m, 3).max_abs_entry() for m in (2, 4, 6, 8)]
        assert entries == sorted(entries)
        assert entries[-1] > 10 * entries[0]

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            winograd_1d(3, 3, points=(Fraction(0), Fraction(1), Fraction(1), Fraction(2)))

    def test_wrong_point_count_rejected(self):
        with pytest.raises(ValueError, match="finite points"):
            winograd_1d(3, 3, points=(Fraction(0), Fraction(1)))

    def test_bad_m_r(self):
        with pytest.raises(ValueError):
            winograd_1d(0, 3)
        with pytest.raises(ValueError):
            winograd_1d(2, 0)

    def test_point_table_exhaustion(self):
        with pytest.raises(ValueError, match="curated"):
            interpolation_points(len(DEFAULT_POINTS) + 1)

    def test_points_distinct(self):
        assert len(set(DEFAULT_POINTS)) == len(DEFAULT_POINTS)

    def test_caching_returns_same_object(self):
        assert winograd_1d(4, 3) is winograd_1d(4, 3)


class TestNDTransforms:
    def test_nd_spec_dims(self):
        spec = FmrSpec(m=(4, 6), r=(3, 3))
        nd = winograd_nd(spec)
        assert len(nd.dims) == 2
        assert nd.dims[0].m == 4 and nd.dims[1].m == 6
        assert nd.tile_shape == (6, 8)

    def test_nd_shared_cache(self):
        nd = winograd_nd(FmrSpec.uniform(3, 4, 3))
        assert nd.dims[0] is nd.dims[1] is nd.dims[2]


class TestModeN:
    def test_mode_n_matches_einsum(self):
        rng = np.random.default_rng(0)
        t = rng.normal(size=(3, 5, 4, 6))
        m = rng.normal(size=(7, 4))
        got = mode_n_multiply(t, m, axis=2)
        want = np.einsum("bxyz,py->bxpz", t, m)
        np.testing.assert_allclose(got, want, rtol=1e-12)
        assert got.shape == (3, 5, 7, 6)

    def test_mode_n_shape_mismatch(self):
        with pytest.raises(ValueError, match="axis"):
            mode_n_multiply(np.zeros((2, 3)), np.zeros((4, 5)), axis=1)

    def test_mode_n_rejects_non_2d_matrix(self):
        with pytest.raises(ValueError, match="2-D"):
            mode_n_multiply(np.zeros((2, 3)), np.zeros((4, 3, 1)), axis=1)

    def test_transform_tensor_separable_equals_kron(self):
        """Applying per-axis matrices equals the Kronecker-product operator
        on the flattened tile -- the separability behind Eqn. 8."""
        rng = np.random.default_rng(1)
        tile = rng.normal(size=(4, 5))
        m0 = rng.normal(size=(2, 4))
        m1 = rng.normal(size=(3, 5))
        got = transform_tensor(tile, [m0, m1])
        want = (np.kron(m0, m1) @ tile.reshape(-1)).reshape(2, 3)
        np.testing.assert_allclose(got, want, rtol=1e-12)

    def test_transform_tensor_batched(self):
        rng = np.random.default_rng(2)
        batch = rng.normal(size=(6, 4, 4))
        m = np.eye(4)
        np.testing.assert_array_equal(transform_tensor(batch, [m, m]), batch)

    def test_transform_tensor_axis_count_mismatch(self):
        with pytest.raises(ValueError, match="axes"):
            transform_tensor(np.zeros((4, 4)), [np.eye(4)], axes=[0, 1])
