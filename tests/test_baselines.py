"""Tests for baseline implementations: numerics and capability envelopes."""

import numpy as np
import pytest

from repro.baselines import (
    BaselineCrash,
    CudnnFft3D,
    CudnnImplicitGemm,
    CudnnWinograd2D,
    Im2colBaseline,
    FftConvBaseline,
    OursWinograd,
    UnsupportedLayer,
    falcon,
    fft_convolution,
    im2col_convolution,
    libxsmm_winograd,
    mkldnn_direct,
    mkldnn_winograd,
    zlateski_direct,
)
from repro.nets.layers import ConvLayerSpec, get_layer
from repro.nets.reference import direct_convolution


def tiny_layer(ndim=2, c=16, cp=16, size=12, batch=1, kernel=3, pad=0):
    return ConvLayerSpec(
        network="T", name="t", batch=batch, c_in=c, c_out=cp,
        image=(size,) * ndim, padding=(pad,) * ndim, kernel=(kernel,) * ndim,
    )


def layer_arrays(layer, seed=0):
    rng = np.random.default_rng(seed)
    img = rng.normal(size=(layer.batch, layer.c_in) + layer.image).astype(np.float32)
    ker = rng.normal(size=(layer.c_in, layer.c_out) + layer.kernel).astype(np.float32)
    return img, ker


class TestNumericalEquivalence:
    """Every executable implementation agrees with the reference."""

    @pytest.mark.parametrize("pad", [0, 1])
    def test_im2col(self, pad):
        layer = tiny_layer(pad=pad)
        img, ker = layer_arrays(layer)
        got = Im2colBaseline().execute(img, ker, layer)
        want = direct_convolution(
            img.astype(np.float64), ker.astype(np.float64), padding=layer.padding
        )
        np.testing.assert_allclose(got, want, rtol=1e-3, atol=1e-4)

    def test_im2col_3d(self):
        layer = tiny_layer(ndim=3, size=7)
        img, ker = layer_arrays(layer)
        got = im2col_convolution(img, ker)
        want = direct_convolution(img, ker)
        np.testing.assert_allclose(got, want, rtol=1e-3, atol=1e-4)

    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_fft(self, ndim):
        layer = tiny_layer(ndim=ndim, size=9)
        img, ker = layer_arrays(layer)
        got = fft_convolution(img, ker)
        want = direct_convolution(
            img.astype(np.float64), ker.astype(np.float64)
        )
        np.testing.assert_allclose(got, want, rtol=1e-2, atol=1e-3)

    def test_fft_with_padding(self):
        layer = tiny_layer(pad=1)
        img, ker = layer_arrays(layer)
        got = FftConvBaseline().execute(img, ker, layer)
        want = direct_convolution(
            img.astype(np.float64), ker.astype(np.float64), padding=layer.padding
        )
        np.testing.assert_allclose(got, want, rtol=1e-2, atol=1e-3)

    def test_falcon_matches_reference(self):
        layer = tiny_layer(size=10)
        img, ker = layer_arrays(layer)
        got = falcon().execute(img, ker, layer)
        want = direct_convolution(
            img.astype(np.float64), ker.astype(np.float64), padding=layer.padding
        )
        np.testing.assert_allclose(got, want, rtol=1e-2, atol=1e-3)

    def test_ours_matches_reference(self):
        layer = tiny_layer(ndim=3, size=8, pad=1)
        img, ker = layer_arrays(layer)
        got = OursWinograd(m=2).execute(img, ker, layer)
        want = direct_convolution(
            img.astype(np.float64), ker.astype(np.float64), padding=layer.padding
        )
        np.testing.assert_allclose(got, want, rtol=1e-2, atol=1e-3)

    def test_direct_baselines_execute(self):
        layer = tiny_layer()
        img, ker = layer_arrays(layer)
        a = mkldnn_direct().execute(img, ker, layer)
        b = zlateski_direct().execute(img, ker, layer)
        np.testing.assert_allclose(a, b, rtol=1e-6)


class TestCapabilityEnvelopes:
    def test_vendor_winograd_2d_only(self):
        layer3d = get_layer("C3D", "C2a")
        for impl in (falcon(), mkldnn_winograd(), libxsmm_winograd()):
            with pytest.raises(UnsupportedLayer, match="2D"):
                impl.supports(layer3d)

    def test_vendor_winograd_3x3_only(self):
        layer = tiny_layer(kernel=5, size=16)
        with pytest.raises(UnsupportedLayer, match="3x3"):
            falcon().supports(layer)

    def test_mkldnn_fusionnet_crash(self):
        """Paper Fig. 5: MKL-DNN segfaults on 4 of 5 FusionNet layers."""
        crashed = 0
        for name in ("1.2", "2.2", "3.2", "4.2", "5.2"):
            layer = get_layer("FusionNet", name)
            try:
                mkldnn_winograd().supports(layer)
            except BaselineCrash:
                crashed += 1
        assert crashed == 4

    def test_vgg_does_not_crash_mkldnn(self):
        mkldnn_winograd().supports(get_layer("VGG", "1.2"))

    def test_cudnn_winograd_2d_only(self):
        with pytest.raises(UnsupportedLayer):
            CudnnWinograd2D().supports(get_layer("C3D", "C2a"))
        CudnnWinograd2D().supports(get_layer("VGG", "3.2"))

    def test_cudnn_fft_3d_only(self):
        with pytest.raises(UnsupportedLayer):
            CudnnFft3D().supports(get_layer("VGG", "3.2"))

    def test_gpu_models_not_executable(self):
        layer = get_layer("VGG", "3.2")
        img, ker = layer_arrays(tiny_layer())
        with pytest.raises(NotImplementedError):
            CudnnImplicitGemm().execute(img, ker, layer)

    def test_ours_supports_everything_in_table2(self):
        from repro.nets.layers import TABLE2_LAYERS

        for layer in TABLE2_LAYERS:
            OursWinograd(m=2).supports(layer)


class TestPredictedTimes:
    @pytest.mark.slow
    def test_all_positive_on_vgg(self):
        layer = get_layer("VGG", "4.2")
        impls = [
            OursWinograd(m=4),
            falcon(),
            mkldnn_winograd(),
            libxsmm_winograd(),
            mkldnn_direct(),
            zlateski_direct(),
            CudnnWinograd2D(),
            CudnnImplicitGemm(),
            Im2colBaseline(),
            FftConvBaseline(),
        ]
        for impl in impls:
            assert impl.predicted_seconds(layer) > 0, impl.name

    def test_ours_beats_cpu_winograd_baselines(self):
        """The headline result: >1x over every existing CPU Winograd."""
        layer = get_layer("VGG", "4.2")
        ours = OursWinograd(m=4).predicted_seconds(layer)
        for impl in (falcon(), mkldnn_winograd(), libxsmm_winograd()):
            assert impl.predicted_seconds(layer) > ours, impl.name

    def test_winograd_beats_direct_on_vgg(self):
        layer = get_layer("VGG", "4.2")
        ours = OursWinograd(m=4).predicted_seconds(layer)
        assert mkldnn_direct().predicted_seconds(layer) > ours

    def test_fft_loses_on_small_kernels(self):
        """Sec. 1.1: Winograd needs fewer operations than FFT for small
        kernels."""
        layer = get_layer("VGG", "4.2")
        ours = OursWinograd(m=4).predicted_seconds(layer)
        assert FftConvBaseline().predicted_seconds(layer) > 2 * ours

    def test_fx_no_slower(self):
        layer = get_layer("FusionNet", "5.2")
        full = OursWinograd(m=4).predicted_seconds(layer)
        fx = OursWinograd(m=4, inference_only=True).predicted_seconds(layer)
        assert fx <= full

    def test_efficiency_validation(self):
        from repro.baselines.direct import DirectConvBaseline

        with pytest.raises(ValueError, match="efficiency"):
            DirectConvBaseline(efficiency=0.0)
