"""Tests for blocking configs and the Eqn. 11 compute-to-memory model."""

import pytest

from repro.core.blocking import (
    C_BLK_PRODUCT_MAX,
    BlockingConfig,
    candidate_blockings,
)


class TestValidation:
    def test_valid(self):
        cfg = BlockingConfig(n_blk=28, c_blk=128, cprime_blk=128)
        assert cfg.n_blk == 28

    @pytest.mark.parametrize("n_blk", [5, 31, 0])
    def test_n_blk_range(self, n_blk):
        with pytest.raises(ValueError, match="n_blk"):
            BlockingConfig(n_blk=n_blk, c_blk=64, cprime_blk=64)

    def test_simd_multiple(self):
        with pytest.raises(ValueError, match="multiple"):
            BlockingConfig(n_blk=8, c_blk=40, cprime_blk=64)

    def test_c_blk_range(self):
        """Hard floor is one SIMD vector; 512 remains the ceiling."""
        BlockingConfig(n_blk=8, c_blk=16, cprime_blk=64)  # small-channel fallback
        with pytest.raises(ValueError, match="outside"):
            BlockingConfig(n_blk=8, c_blk=1024, cprime_blk=16)

    def test_product_limit(self):
        """C_blk * C'_blk <= 128^2 (L2 constraint)."""
        with pytest.raises(ValueError, match="exceeds"):
            BlockingConfig(n_blk=8, c_blk=256, cprime_blk=128)
        BlockingConfig(n_blk=8, c_blk=128, cprime_blk=128)  # boundary OK


class TestEqn11:
    def test_paper_values(self):
        """Sec. 4.3.2 quotes ratio 85.33 for 128x128 (beta=1) and 42.67
        for 64x64."""
        big = BlockingConfig(n_blk=8, c_blk=128, cprime_blk=128)
        small = BlockingConfig(n_blk=8, c_blk=64, cprime_blk=64)
        assert big.compute_to_memory_ratio(1) == pytest.approx(85.33, abs=0.01)
        assert small.compute_to_memory_ratio(1) == pytest.approx(42.67, abs=0.01)

    def test_beta0_higher_ratio(self):
        cfg = BlockingConfig(n_blk=8, c_blk=128, cprime_blk=128)
        assert cfg.compute_to_memory_ratio(0) > cfg.compute_to_memory_ratio(1)

    def test_bad_beta(self):
        with pytest.raises(ValueError, match="beta"):
            BlockingConfig(n_blk=8, c_blk=64, cprime_blk=64).compute_to_memory_ratio(2)

    def test_v_bytes(self):
        """128x128 V needs 64 KB of L2 (Sec. 4.3.2)."""
        cfg = BlockingConfig(n_blk=8, c_blk=128, cprime_blk=128)
        assert cfg.v_bytes() == 64 * 1024


class TestCandidates:
    def test_all_valid_and_divide(self):
        for cfg in candidate_blockings(256, 256):
            assert 256 % cfg.c_blk == 0
            assert 256 % cfg.cprime_blk == 0
            assert cfg.c_blk * cfg.cprime_blk <= C_BLK_PRODUCT_MAX

    def test_sorted_by_ratio(self):
        cfgs = candidate_blockings(256, 256)
        ratios = [c.compute_to_memory_ratio(1) for c in cfgs]
        assert ratios == sorted(ratios, reverse=True)

    def test_best_for_256_is_128x128(self):
        best = candidate_blockings(256, 256)[0]
        assert (best.c_blk, best.cprime_blk) == (128, 128)

    def test_small_channels(self):
        cfgs = candidate_blockings(32, 64)
        assert cfgs
        assert all(c.c_blk == 32 for c in cfgs)

    def test_rejects_non_simd_channels(self):
        with pytest.raises(ValueError, match="multiples"):
            candidate_blockings(100, 64)
