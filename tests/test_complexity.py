"""Tests for the arithmetic-complexity ledger."""

import pytest

from repro.core.complexity import (
    complexity_table,
    direct_counts,
    effective_reduction,
    fft_counts,
    winograd_counts,
)
from repro.core.fmr import FmrSpec
from repro.nets.layers import ConvLayerSpec, get_layer


def layer(size=32, c=64, cp=64, batch=4, ndim=2, pad=1):
    return ConvLayerSpec(
        "T", "t", batch, c, cp, (size,) * ndim, (pad,) * ndim, (3,) * ndim
    )


class TestDirect:
    def test_exact(self):
        l = layer()
        d = direct_counts(l)
        assert d.multiplications == 4 * 64 * 64 * 32 * 32 * 9
        assert d.additions == d.multiplications
        assert d.total == 2 * d.multiplications


class TestWinograd:
    def test_gemm_mults_dominate_and_match_formula(self):
        l = layer()
        fmr = FmrSpec.uniform(2, 4, 3)
        w = winograd_counts(l, fmr)
        counts = fmr.tile_counts(l.output_image)
        gemm = 36 * counts[0] * counts[1] * l.batch * 64 * 64
        assert w.multiplications >= gemm
        # Transforms add well under the GEMM multiplication count here.
        assert w.multiplications < 1.2 * gemm

    def test_effective_reduction_below_theoretical(self):
        """Padding + transform mults eat into the per-tile bound."""
        l = get_layer("VGG", "5.2")  # 14x14: heavy padding at m=6
        fmr = FmrSpec.uniform(2, 6, 3)
        eff = effective_reduction(l, fmr)
        assert eff < fmr.multiplication_reduction
        assert eff > 1.0

    def test_effective_reduction_close_on_divisible_images(self):
        l = layer(size=34, pad=1)  # output 34 -> not divisible by 4... use 30
        l = ConvLayerSpec("T", "t", 4, 64, 64, (30, 30), (1, 1), (3, 3))
        fmr = FmrSpec.uniform(2, 6, 3)  # output 30 divisible by 6
        eff = effective_reduction(l, fmr)
        assert eff > 0.7 * fmr.multiplication_reduction

    def test_transform_ops_grow_with_m(self):
        """Sec. 5.1: transform operations increase quadratically with m.
        Verify super-linear growth of per-tile transform mult counts."""
        l = ConvLayerSpec("T", "t", 1, 64, 64, (48, 48), (1, 1), (3, 3))
        def transform_mults(m):
            fmr = FmrSpec.uniform(2, m, 3)
            w = winograd_counts(l, fmr)
            counts = fmr.tile_counts(l.output_image)
            gemm = fmr.tile_elements * counts[0] * counts[1] * 64 * 64
            n_tiles = counts[0] * counts[1]
            return (w.multiplications - gemm) / n_tiles  # per tile
        t2, t4, t6 = transform_mults(2), transform_mults(4), transform_mults(6)
        assert t4 > 2 * t2
        assert t6 > 1.5 * t4

    def test_kernel_mismatch(self):
        with pytest.raises(ValueError, match="does not match"):
            winograd_counts(layer(), FmrSpec.uniform(2, 4, 5))

    def test_3d(self):
        l = layer(size=12, ndim=3)
        w = winograd_counts(l, FmrSpec.uniform(3, 2, 3))
        d = direct_counts(l)
        assert w.multiplications < d.multiplications


class TestFft:
    def test_fft_worse_than_winograd_on_3x3(self):
        l = layer()
        f = fft_counts(l)
        w = winograd_counts(l, FmrSpec.uniform(2, 4, 3))
        assert f.multiplications > w.multiplications


class TestTable:
    def test_rows(self):
        l = layer()
        rows = complexity_table(l, [FmrSpec.uniform(2, 2, 3), FmrSpec.uniform(2, 4, 3)])
        assert [r.algorithm for r in rows] == [
            "direct", "winograd F(2x2,3x3)", "winograd F(4x4,3x3)", "fft",
        ]
        mults = [r.multiplications for r in rows]
        assert mults[2] < mults[1] < mults[0]  # winograd reduction grows with m
