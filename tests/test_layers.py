"""Tests for the Table-2 layer registry and the initializers."""

import numpy as np
import pytest

from repro.nets.initializers import (
    pretrained_like_kernels,
    uniform_images,
    xavier_kernels,
)
from repro.nets.layers import (
    BUDDEN_NET,
    TABLE2_LAYERS,
    ConvLayerSpec,
    get_layer,
    layers_for_network,
)


class TestTable2:
    def test_sixteen_rows(self):
        assert len(TABLE2_LAYERS) == 16

    def test_network_partition(self):
        assert len(layers_for_network("VGG")) == 5
        assert len(layers_for_network("FusionNet")) == 5
        assert len(layers_for_network("C3D")) == 3
        assert len(layers_for_network("3DUNet")) == 3

    def test_unknown_network(self):
        with pytest.raises(KeyError, match="unknown network"):
            layers_for_network("ResNet")

    def test_get_layer(self):
        layer = get_layer("VGG", "3.2")
        assert (layer.batch, layer.c_in, layer.c_out) == (64, 256, 256)
        assert layer.image == (56, 56)
        with pytest.raises(KeyError):
            get_layer("VGG", "9.9")

    def test_exact_paper_values_spot_checks(self):
        c2a = get_layer("C3D", "C2a")
        assert c2a.batch == 32
        assert (c2a.c_in, c2a.c_out) == (64, 128)
        assert c2a.image == (16, 56, 56)
        assert c2a.padding == (1, 1, 1)
        assert c2a.kernel == (3, 3, 3)
        unet = get_layer("3DUNet", "1.2")
        assert unet.image == (114, 130, 130)
        assert unet.batch == 1
        fusion = get_layer("FusionNet", "5.2")
        assert (fusion.c_in, fusion.c_out) == (1024, 1024)
        assert fusion.padding == (0, 0)

    def test_all_channels_simd_divisible(self):
        """Sec. 4.1's assumption holds for every benchmarked layer."""
        for layer in TABLE2_LAYERS:
            assert layer.c_in % 16 == 0
            assert layer.c_out % 16 == 0

    def test_output_image(self):
        assert get_layer("VGG", "1.2").output_image == (224, 224)  # pad 1
        assert get_layer("FusionNet", "1.2").output_image == (638, 638)

    def test_flops_and_voxels(self):
        layer = get_layer("VGG", "5.2")
        assert layer.output_voxels == 64 * 512 * 14 * 14
        assert layer.direct_flops() == 2 * 64 * 512 * 512 * 14 * 14 * 9

    def test_fmr_helper(self):
        spec = get_layer("C3D", "C2a").fmr((4, 6, 6))
        assert spec.m == (4, 6, 6)
        assert spec.r == (3, 3, 3)
        spec2 = get_layer("VGG", "1.2").fmr(4)
        assert spec2.m == (4, 4)

    def test_scaled_surrogate(self):
        layer = get_layer("VGG", "3.2").scaled(
            batch=2, channels_divisor=8, image_divisor=4
        )
        assert layer.batch == 2
        assert layer.c_in == 32
        assert layer.image == (14, 14)
        assert layer.kernel == (3, 3)
        with pytest.raises(ValueError):
            get_layer("VGG", "3.2").scaled(channels_divisor=0)

    def test_validation(self):
        with pytest.raises(ValueError, match="rank"):
            ConvLayerSpec("X", "y", 1, 16, 16, (8, 8), (1,), (3, 3))
        with pytest.raises(ValueError, match="positive"):
            ConvLayerSpec("X", "y", 0, 16, 16, (8,), (1,), (3,))

    def test_budden_net(self):
        assert len(BUDDEN_NET) == 3
        for layer in BUDDEN_NET:
            assert layer.kernel == (4, 4)
            assert layer.c_in == layer.c_out == 32


class TestInitializers:
    def layer(self):
        return ConvLayerSpec("T", "t", 2, 16, 32, (8, 8), (0, 0), (3, 3))

    def test_uniform_images_range_and_shape(self):
        rng = np.random.default_rng(0)
        imgs = uniform_images(self.layer(), rng)
        assert imgs.shape == (2, 16, 8, 8)
        assert imgs.dtype == np.float32
        assert imgs.min() >= -0.1 and imgs.max() <= 0.1

    def test_xavier_scale(self):
        rng = np.random.default_rng(1)
        ker = xavier_kernels(self.layer(), rng)
        assert ker.shape == (16, 32, 3, 3)
        bound = np.sqrt(6.0 / (16 * 9 + 32 * 9))
        assert np.abs(ker).max() <= bound
        # Uniform distribution: std should be near bound/sqrt(3).
        assert np.std(ker) == pytest.approx(bound / np.sqrt(3), rel=0.1)

    def test_pretrained_like_smaller_variance(self):
        """Trained-like kernels must have lower variance than Xavier --
        the property that makes inference errors smaller (Table 3)."""
        rng1, rng2 = np.random.default_rng(2), np.random.default_rng(2)
        xavier = xavier_kernels(self.layer(), rng1)
        trained = pretrained_like_kernels(self.layer(), rng2)
        assert trained.shape == xavier.shape
        assert np.std(trained) < np.std(xavier)

    def test_pretrained_like_center_heavy(self):
        rng = np.random.default_rng(3)
        ker = pretrained_like_kernels(self.layer(), rng)
        center = np.abs(ker[:, :, 1, 1]).mean()
        corner = np.abs(ker[:, :, 0, 0]).mean()
        assert center > corner

    def test_3d_initializers(self):
        layer = ConvLayerSpec("T", "t", 1, 16, 16, (6, 6, 6), (0, 0, 0), (3, 3, 3))
        rng = np.random.default_rng(4)
        assert xavier_kernels(layer, rng).shape == (16, 16, 3, 3, 3)
        assert pretrained_like_kernels(layer, rng).shape == (16, 16, 3, 3, 3)
