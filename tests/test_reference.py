"""Tests for the reference direct convolution (semantic oracle)."""

import numpy as np
import pytest
from scipy.signal import correlate

from repro.nets.reference import (
    direct_convolution,
    output_shape,
    pad_images,
    reference_convolution,
)


class TestOutputShape:
    def test_valid(self):
        assert output_shape((8, 8), (3, 3)) == (6, 6)

    def test_padded(self):
        assert output_shape((8, 8), (3, 3), (1, 1)) == (8, 8)

    def test_kernel_too_large(self):
        with pytest.raises(ValueError, match="larger"):
            output_shape((2, 2), (3, 3))

    def test_rank_mismatch(self):
        with pytest.raises(ValueError, match="rank"):
            output_shape((8, 8), (3,))


class TestPadImages:
    def test_zero_padding_is_identity(self):
        x = np.ones((1, 1, 4, 4))
        assert pad_images(x, (0, 0)) is x

    def test_padding_shape(self):
        x = np.ones((2, 3, 4, 5))
        assert pad_images(x, (1, 2)).shape == (2, 3, 6, 9)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            pad_images(np.ones((1, 1, 4, 4)), (-1, 0))


class TestDirectConvolution:
    def test_single_channel_matches_scipy(self):
        rng = np.random.default_rng(0)
        img = rng.normal(size=(1, 1, 9, 11))
        ker = rng.normal(size=(1, 1, 3, 3))
        got = direct_convolution(img, ker)
        want = correlate(img[0, 0], ker[0, 0], mode="valid")
        np.testing.assert_allclose(got[0, 0], want, rtol=1e-12)

    def test_multichannel_sum(self):
        """Eqn. 6: output channel is the sum over input channels."""
        rng = np.random.default_rng(1)
        img = rng.normal(size=(2, 3, 6, 6))
        ker = rng.normal(size=(3, 4, 3, 3))
        got = direct_convolution(img, ker)
        assert got.shape == (2, 4, 4, 4)
        want = np.zeros_like(got)
        for b in range(2):
            for cp in range(4):
                for c in range(3):
                    want[b, cp] += correlate(img[b, c], ker[c, cp], mode="valid")
        np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-12)

    def test_3d(self):
        rng = np.random.default_rng(2)
        img = rng.normal(size=(1, 2, 5, 6, 7))
        ker = rng.normal(size=(2, 3, 3, 3, 3))
        got = direct_convolution(img, ker)
        assert got.shape == (1, 3, 3, 4, 5)
        want = sum(
            correlate(img[0, c], ker[c, 1], mode="valid") for c in range(2)
        )
        np.testing.assert_allclose(got[0, 1], want, rtol=1e-10, atol=1e-12)

    def test_1d(self):
        img = np.arange(6, dtype=float).reshape(1, 1, 6)
        ker = np.array([1.0, 0.0, -1.0]).reshape(1, 1, 3)
        got = direct_convolution(img, ker)
        np.testing.assert_allclose(got[0, 0], [-2, -2, -2, -2])

    def test_padding_matches_manual_pad(self):
        rng = np.random.default_rng(3)
        img = rng.normal(size=(1, 2, 5, 5))
        ker = rng.normal(size=(2, 2, 3, 3))
        padded = np.pad(img, [(0, 0), (0, 0), (1, 1), (1, 1)])
        np.testing.assert_allclose(
            direct_convolution(img, ker, padding=(1, 1)),
            direct_convolution(padded, ker),
            rtol=1e-12,
        )

    def test_channel_mismatch(self):
        with pytest.raises(ValueError, match="channel mismatch"):
            direct_convolution(np.ones((1, 2, 5, 5)), np.ones((3, 2, 3, 3)))

    def test_rank_mismatch(self):
        with pytest.raises(ValueError, match="spatial dims"):
            direct_convolution(np.ones((1, 2, 5, 5)), np.ones((2, 2, 3)))

    def test_dtype_control(self):
        img = np.ones((1, 1, 4, 4), dtype=np.float32)
        ker = np.ones((1, 1, 3, 3), dtype=np.float32)
        assert direct_convolution(img, ker).dtype == np.float32
        assert direct_convolution(img, ker, dtype=np.float64).dtype == np.float64


class TestReferenceConvolution:
    def test_longdouble_output(self):
        img = np.ones((1, 1, 4, 4), dtype=np.float32)
        ker = np.ones((1, 1, 3, 3), dtype=np.float32)
        out = reference_convolution(img, ker)
        assert out.dtype == np.longdouble
        np.testing.assert_allclose(out.astype(float), 9.0)

    def test_more_precise_than_float32(self):
        """Extended precision must beat float32 on an ill-conditioned sum."""
        rng = np.random.default_rng(4)
        img = rng.normal(size=(1, 64, 1, 6, 6)).astype(np.float32)[:, :, 0]
        ker = rng.normal(size=(64, 1, 3, 3)).astype(np.float32)
        f32 = direct_convolution(img, ker)
        ref = reference_convolution(img, ker)
        f64 = direct_convolution(img, ker, dtype=np.float64)
        err32 = np.abs(f32 - ref).max()
        err64 = np.abs(f64 - ref).max()
        assert err64 < err32
