"""Tests for the three-stage Winograd convolution pipeline.

The central invariant: for every F(m, r), dimensionality, padding and
channel configuration, the Winograd result matches the direct convolution
up to floating-point rounding.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.convolution import (
    TransformedKernels,
    WinogradPlan,
    winograd_convolution,
)
from repro.core.fmr import FmrSpec
from repro.nets.reference import direct_convolution


def rand_problem(rng, b, c, cp, spatial, r):
    img = rng.normal(size=(b, c) + spatial).astype(np.float64)
    ker = rng.normal(size=(c, cp) + r).astype(np.float64)
    return img, ker


class TestEquivalenceFixed:
    @pytest.mark.parametrize("m", [2, 3, 4, 6])
    def test_2d_3x3(self, m):
        rng = np.random.default_rng(m)
        img, ker = rand_problem(rng, 2, 4, 3, (13, 11), (3, 3))
        got = winograd_convolution(img, ker, FmrSpec.uniform(2, m, 3), dtype=np.float64)
        want = direct_convolution(img, ker)
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-10)

    @pytest.mark.parametrize("r", [1, 2, 4, 5])
    def test_2d_arbitrary_kernels(self, r):
        """Arbitrary kernel sizes -- the capability existing libraries lack."""
        rng = np.random.default_rng(r)
        img, ker = rand_problem(rng, 1, 2, 2, (r + 7, r + 9), (r, r))
        got = winograd_convolution(img, ker, FmrSpec.uniform(2, 3, r), dtype=np.float64)
        want = direct_convolution(img, ker)
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-10)

    def test_3d(self):
        rng = np.random.default_rng(0)
        img, ker = rand_problem(rng, 2, 2, 2, (8, 9, 10), (3, 3, 3))
        got = winograd_convolution(img, ker, FmrSpec.uniform(3, 2, 3), dtype=np.float64)
        want = direct_convolution(img, ker)
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-10)

    def test_3d_anisotropic_tiles(self):
        """Mixed tile sizes like the paper's F(4x6x6, 3^3)."""
        rng = np.random.default_rng(1)
        img, ker = rand_problem(rng, 1, 2, 2, (7, 9, 11), (3, 3, 3))
        spec = FmrSpec(m=(2, 3, 4), r=(3, 3, 3))
        got = winograd_convolution(img, ker, spec, dtype=np.float64)
        np.testing.assert_allclose(
            got, direct_convolution(img, ker), rtol=1e-9, atol=1e-10
        )

    def test_anisotropic_kernel(self):
        rng = np.random.default_rng(2)
        img, ker = rand_problem(rng, 1, 2, 2, (9, 8), (3, 2))
        spec = FmrSpec(m=(2, 4), r=(3, 2))
        got = winograd_convolution(img, ker, spec, dtype=np.float64)
        np.testing.assert_allclose(
            got, direct_convolution(img, ker), rtol=1e-9, atol=1e-10
        )

    def test_1d(self):
        rng = np.random.default_rng(3)
        img, ker = rand_problem(rng, 3, 2, 5, (17,), (3,))
        got = winograd_convolution(img, ker, FmrSpec(m=(4,), r=(3,)), dtype=np.float64)
        np.testing.assert_allclose(
            got, direct_convolution(img, ker), rtol=1e-9, atol=1e-10
        )

    def test_with_padding(self):
        rng = np.random.default_rng(4)
        img, ker = rand_problem(rng, 2, 3, 3, (8, 8), (3, 3))
        got = winograd_convolution(
            img, ker, FmrSpec.uniform(2, 4, 3), padding=(1, 1), dtype=np.float64
        )
        want = direct_convolution(img, ker, padding=(1, 1))
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-10)

    def test_float32_tolerance(self):
        rng = np.random.default_rng(5)
        img, ker = rand_problem(rng, 1, 8, 8, (12, 12), (3, 3))
        got = winograd_convolution(
            img.astype(np.float32), ker.astype(np.float32), FmrSpec.uniform(2, 4, 3)
        )
        assert got.dtype == np.float32
        want = direct_convolution(img, ker)
        np.testing.assert_allclose(got, want, rtol=2e-3, atol=2e-4)

    def test_default_spec_is_m2(self):
        rng = np.random.default_rng(6)
        img, ker = rand_problem(rng, 1, 2, 2, (6, 6), (3, 3))
        got = winograd_convolution(img, ker, dtype=np.float64)
        np.testing.assert_allclose(
            got, direct_convolution(img, ker), rtol=1e-9, atol=1e-10
        )


class TestEquivalenceProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        ndim=st.integers(1, 3),
        m=st.integers(1, 4),
        r=st.integers(1, 3),
        c=st.integers(1, 3),
        cp=st.integers(1, 3),
        b=st.integers(1, 2),
        extra=st.integers(0, 4),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_matches_direct(self, ndim, m, r, c, cp, b, extra, seed):
        rng = np.random.default_rng(seed)
        spec = FmrSpec.uniform(ndim, m, r)
        spatial = tuple(m + r - 1 + extra for _ in range(ndim))
        img, ker = rand_problem(rng, b, c, cp, spatial, spec.r)
        got = winograd_convolution(img, ker, spec, dtype=np.float64)
        want = direct_convolution(img, ker)
        np.testing.assert_allclose(got, want, rtol=1e-8, atol=1e-8)


class TestPlanAPI:
    def make_plan(self, **kw):
        defaults = dict(
            spec=FmrSpec.uniform(2, 2, 3),
            input_shape=(2, 4, 8, 8),
            c_out=6,
            padding=(0, 0),
            dtype=np.float64,
        )
        defaults.update(kw)
        return WinogradPlan(**defaults)

    def test_derived_sizes(self):
        plan = self.make_plan()
        assert plan.batch == 2
        assert plan.c_in == 4
        assert plan.t_matrices == 16
        assert plan.tiles_per_image == 9
        assert plan.gemm_rows == 18
        assert plan.output_batch_shape == (2, 6, 6, 6)

    def test_stage_shapes(self):
        plan = self.make_plan()
        rng = np.random.default_rng(0)
        img = rng.normal(size=plan.input_shape)
        ker = rng.normal(size=(4, 6, 3, 3))
        u = plan.transform_input(img)
        assert u.shape == (16, 18, 4)
        w = plan.transform_kernels(ker)
        assert w.data.shape == (16, 4, 6)
        x = plan.multiply(u, w)
        assert x.shape == (16, 18, 6)
        out = plan.inverse_transform(x)
        assert out.shape == plan.output_batch_shape

    def test_fx_mode_matches_full(self):
        """Inference-only (memoized kernel transforms) must be identical."""
        plan = self.make_plan()
        rng = np.random.default_rng(1)
        img = rng.normal(size=plan.input_shape)
        ker = rng.normal(size=(4, 6, 3, 3))
        w = plan.transform_kernels(ker)
        np.testing.assert_array_equal(plan.execute(img, w), plan.execute(img, ker))

    def test_rejects_wrong_image_shape(self):
        plan = self.make_plan()
        with pytest.raises(ValueError, match="planned"):
            plan.transform_input(np.zeros((2, 4, 9, 8)))

    def test_rejects_wrong_kernel_shape(self):
        plan = self.make_plan()
        with pytest.raises(ValueError, match="expected"):
            plan.transform_kernels(np.zeros((4, 6, 5, 5)))

    def test_rejects_foreign_transformed_kernels(self):
        plan = self.make_plan()
        other = TransformedKernels(
            spec=FmrSpec.uniform(2, 4, 3), data=np.zeros((36, 4, 6))
        )
        with pytest.raises(ValueError, match="built for"):
            plan.multiply(np.zeros((16, 18, 4)), other)

    def test_rejects_channel_mismatch(self):
        plan = self.make_plan()
        other = TransformedKernels(spec=plan.spec, data=np.zeros((16, 5, 6)))
        with pytest.raises(ValueError, match="channels"):
            plan.multiply(np.zeros((16, 18, 4)), other)

    def test_rejects_bad_stage2_shape(self):
        plan = self.make_plan()
        with pytest.raises(ValueError, match="stage-2"):
            plan.inverse_transform(np.zeros((16, 18, 5)))

    def test_custom_gemm_injection(self):
        calls = []

        def spy_gemm(u, v):
            calls.append((u.shape, v.shape))
            return np.matmul(u, v)

        plan = self.make_plan(gemm=spy_gemm)
        rng = np.random.default_rng(2)
        img = rng.normal(size=plan.input_shape)
        ker = rng.normal(size=(4, 6, 3, 3))
        plan.execute(img, ker)
        assert calls == [((16, 18, 4), (16, 4, 6))]

    def test_spec_string_parsing(self):
        rng = np.random.default_rng(7)
        img = rng.normal(size=(1, 2, 8, 8))
        ker = rng.normal(size=(2, 2, 3, 3))
        got = winograd_convolution(img, ker, "F(4x4,3x3)", dtype=np.float64)
        np.testing.assert_allclose(
            got, direct_convolution(img, ker), rtol=1e-9, atol=1e-10
        )

    def test_spec_kernel_mismatch(self):
        with pytest.raises(ValueError, match="kernel size"):
            winograd_convolution(
                np.zeros((1, 1, 8, 8)), np.zeros((1, 1, 5, 5)), "F(2x2,3x3)"
            )
