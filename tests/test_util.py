"""Tests for the util package: alignment, errors, reporting."""

import numpy as np
import pytest

from repro.util.alignment import (
    CACHE_LINE_BYTES,
    VECTOR_WIDTH_AVX2,
    VECTOR_WIDTH_AVX512,
    check_channel_divisibility,
    round_up,
)
from repro.util.errors import ErrorStats, element_errors
from repro.util.reporting import bar_chart, format_table, write_csv


class TestAlignment:
    def test_constants(self):
        assert VECTOR_WIDTH_AVX512 == 16
        assert VECTOR_WIDTH_AVX2 == 8
        assert CACHE_LINE_BYTES == 64

    @pytest.mark.parametrize("v,m,out", [(17, 16, 32), (32, 16, 32), (0, 16, 0), (1, 1, 1)])
    def test_round_up(self, v, m, out):
        assert round_up(v, m) == out

    def test_round_up_validation(self):
        with pytest.raises(ValueError):
            round_up(5, 0)
        with pytest.raises(ValueError):
            round_up(-1, 4)

    def test_check_divisibility(self):
        check_channel_divisibility(64, 16)
        with pytest.raises(ValueError, match="pad to 64"):
            check_channel_divisibility(50, 16)
        with pytest.raises(ValueError, match="positive"):
            check_channel_divisibility(0, 16)


class TestErrors:
    def test_stats(self):
        a = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        b = np.array([1.0, 2.5, 3.0], dtype=np.float64)
        stats = element_errors(a, b)
        assert isinstance(stats, ErrorStats)
        assert stats.max_error == pytest.approx(0.5)
        assert stats.avg_error == pytest.approx(0.5 / 3)
        assert stats.n_elements == 3

    def test_shape_mismatch_loud(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            element_errors(np.zeros(3), np.zeros(4))

    def test_str(self):
        s = str(element_errors(np.zeros(2), np.zeros(2)))
        assert "max=" in s and "avg=" in s


class TestReporting:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "333" in lines[2] or "333" in lines[3]

    def test_format_table_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out

    def test_write_csv(self, tmp_path):
        p = tmp_path / "t.csv"
        write_csv(p, ["x", "y"], [[1, 2], [3, 4]])
        assert p.read_text() == "x,y\n1,2\n3,4\n"

    def test_write_csv_quotes_commas(self, tmp_path):
        p = tmp_path / "t.csv"
        write_csv(p, ["x"], [["a,b"], ['he said "hi"']])
        lines = p.read_text().splitlines()
        assert lines[1] == '"a,b"'
        assert lines[2] == '"he said ""hi"""'

    def test_bar_chart(self):
        out = bar_chart(["short", "longer"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError, match="labels"):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError, match="positive"):
            bar_chart(["a"], [0.0])
        assert bar_chart([], []) == ""
