"""Graph differential suite: whole-graph execution is trustworthy.

The contract under test (ISSUE 9): for every supported backend and
algorithm, :class:`GraphExecutor` -- with epilogue fusion and arena
placement on -- produces output **bitwise identical** to the naive
node-at-a-time replay of the same plan, and allclose to a float64
direct-convolution oracle.  Plus: topology validation raises structured
errors, seeded random DAGs (fan-out, skips, diamonds) match the oracle,
the fused path performs zero inter-layer copies, the process backend
leaks no shared-memory segments (even when a worker is killed
mid-graph), and the serve/CLI wiring round-trips.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.compiled_backend import compiled_available
from repro.core.engine import ConvolutionEngine
from repro.core.portfolio import ALGORITHMS
from repro.graph import (
    EPILOGUE_OPS,
    Graph,
    GraphError,
    GraphExecutor,
    execute_plan_naive,
    from_sequential,
    graph_scaled_c3d,
    graph_scaled_fusionnet,
    graph_scaled_vgg,
    oracle_execute,
    plan_graph,
    random_graph,
    residual_block,
    toy_classifier,
)
from repro.nets.network import scaled_vgg
from repro.obs.faults import FaultPlan
from repro.serve import ServeClient
from repro.serve.protocol import ProtocolError
from repro.serve.server import ConvServer

#: name -> zero-arg builder for the evaluation networks of the issue.
NETWORKS = {
    "vgg": graph_scaled_vgg,
    "fusionnet": graph_scaled_fusionnet,
    "c3d": graph_scaled_c3d,
    "residual": residual_block,
}

#: Oracle tolerance, scaled by output magnitude (float32 engine paths).
ORACLE_ATOL = 5e-4


def _feeds(graph: Graph, seed: int = 0) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        name: rng.standard_normal(shape).astype(np.float32)
        for name, shape in graph.inputs.items()
    }


def _assert_graph_faithful(engine, graph, *, backend=None, algorithm=None,
                           fuse=True, seed=0):
    """Optimized == naive (bitwise) and == oracle (allclose); returns
    the executor for plan introspection."""
    feeds = _feeds(graph, seed)
    ex = GraphExecutor(graph, engine, backend=backend, algorithm=algorithm, fuse=fuse)
    out = ex.run(feeds)
    naive = execute_plan_naive(ex.plan, engine, feeds)
    oracle = oracle_execute(graph, feeds)
    assert set(out) == set(graph.outputs)
    for name in out:
        np.testing.assert_array_equal(
            out[name], naive[name],
            err_msg=f"{graph.name}/{name}: optimized != naive node-at-a-time",
        )
        scale = max(float(np.abs(oracle[name]).max()), 1.0)
        np.testing.assert_allclose(
            out[name].astype(np.float64), oracle[name],
            atol=ORACLE_ATOL * scale, rtol=0,
            err_msg=f"{graph.name}/{name}: vs direct-convolution oracle",
        )
    return ex


# ----------------------------------------------------------------------
# IR validation: structured errors
# ----------------------------------------------------------------------
class TestValidation:
    def _w(self, c_in=4, c_out=4, k=(3, 3)):
        return np.ones((c_in, c_out) + k, dtype=np.float32)

    def _code(self, graph) -> str:
        with pytest.raises(GraphError) as exc:
            graph.validate()
        return exc.value.code

    def test_empty_graph(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        assert self._code(g) == "empty_graph"

    def test_duplicate_name(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        g.add("relu", "a", "x")
        with pytest.raises(GraphError) as exc:
            g.add("relu", "a", "x")
        assert exc.value.code == "duplicate_name"
        with pytest.raises(GraphError) as exc:
            g.add_input("a", (1, 4, 8, 8))
        assert exc.value.code == "duplicate_name"

    def test_unknown_op(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        g.add("softmax", "a", "x")
        assert self._code(g) == "unknown_op"

    def test_dangling_input(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        g.add("add", "a", ("x", "ghost"))
        assert self._code(g) == "dangling_input"

    def test_cycle(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        g.add("add", "a", ("x", "b"))
        g.add("relu", "b", "a")
        assert self._code(g) == "cycle"

    def test_elementwise_shape_mismatch(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        g.add("maxpool", "p", "x", window=2)
        g.add("add", "a", ("x", "p"))
        assert self._code(g) == "shape_mismatch"

    def test_conv_channel_mismatch(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        g.add("conv", "c", "x", weights=self._w(c_in=8), padding=(1, 1))
        assert self._code(g) == "shape_mismatch"

    def test_conv_kernel_does_not_fit(self):
        g = Graph()
        g.add_input("x", (1, 4, 2, 2))
        g.add("conv", "c", "x", weights=self._w(), padding=(0, 0))
        assert self._code(g) == "shape_mismatch"

    def test_conv_bad_weights(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        g.add("conv", "c", "x", weights="nope", padding=(1, 1))
        assert self._code(g) == "bad_attr"

    def test_batchnorm_bad_params(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        g.add("batchnorm", "bn", "x",
              scale=np.ones(3, np.float32), shift=np.ones(4, np.float32))
        assert self._code(g) == "bad_attr"

    def test_maxpool_empties_spatial(self):
        g = Graph()
        g.add_input("x", (1, 4, 3, 3))
        g.add("maxpool", "p", "x", window=4)
        assert self._code(g) == "shape_mismatch"

    def test_gemm_needs_2d_input(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        g.add("gemm", "m", "x", weights=np.ones((4, 2), np.float32))
        assert self._code(g) == "shape_mismatch"

    def test_unknown_output(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        g.add("relu", "a", "x")
        g.mark_output("ghost")
        assert self._code(g) == "unknown_output"

    def test_arity_mismatch(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        g.add("add", "a", ("x",))
        assert self._code(g) == "shape_mismatch"

    def test_valid_graph_reports_order_and_shapes(self):
        g = residual_block(c=8, size=8)
        order, shapes = g.validate()
        assert [n.name for n in order] == ["c1", "r1", "c2", "sum", "out"]
        assert shapes["out"] == (1, 8, 8, 8)
        assert g.outputs == ("out",)

    def test_bad_feeds_raise_structured(self):
        g = residual_block(c=8, size=8)
        with ConvolutionEngine() as eng:
            ex = GraphExecutor(g, eng)
            with pytest.raises(GraphError) as exc:
                ex.run({})
            assert exc.value.code == "bad_feed"
            with pytest.raises(GraphError) as exc:
                ex.run({"x": np.zeros((1, 8, 4, 4), np.float32)})
            assert exc.value.code == "bad_feed"
            with pytest.raises(GraphError) as exc:
                ex.run({"x": np.zeros((1, 8, 8, 8), np.float32),
                        "y": np.zeros(3)})
            assert exc.value.code == "bad_feed"

    def test_serialization_roundtrip_executes_identically(self):
        g = toy_classifier()
        back = Graph.from_dict(g.to_dict())
        assert [n.name for n in back.nodes] == [n.name for n in g.nodes]
        feeds = _feeds(g, seed=5)
        with ConvolutionEngine() as eng:
            a = eng.run_graph(g, feeds)
            b = eng.run_graph(back, feeds)
        for k in a:
            np.testing.assert_array_equal(a[k], b[k])

    def test_from_dict_malformed_payload(self):
        with pytest.raises(GraphError) as exc:
            Graph.from_dict({"nodes": []})
        assert exc.value.code == "bad_attr"


# ----------------------------------------------------------------------
# Differential matrix
# ----------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("network", sorted(NETWORKS))
    def test_fused_path_matches_naive_and_oracle(self, network):
        with ConvolutionEngine(backend="fused") as eng:
            _assert_graph_faithful(eng, NETWORKS[network]())

    @pytest.mark.parametrize("backend", ("blocked", "thread", "process", "compiled"))
    @pytest.mark.parametrize("network", ("vgg", "residual"))
    def test_backend_matrix(self, backend, network):
        if backend == "compiled" and not compiled_available():
            pytest.skip("no C toolchain")
        with ConvolutionEngine(n_workers=2) as eng:
            _assert_graph_faithful(eng, NETWORKS[network](), backend=backend)

    def test_classifier_head_ops(self):
        """batchnorm / gap / gemm semantics agree with the oracle."""
        with ConvolutionEngine() as eng:
            ex = _assert_graph_faithful(eng, toy_classifier())
        assert {n.op for n in ex.plan.order} >= {"batchnorm", "gap", "gemm", "maxpool"}

    def test_auto_algorithm_per_node(self):
        """The portfolio decides per conv node; the result stays faithful."""
        g = residual_block(c=32, size=16, kind="bottleneck")
        with ConvolutionEngine() as eng:
            ex = _assert_graph_faithful(eng, g, algorithm="auto")
        algos = {p.name: p.algorithm for p in ex.plan.conv_plans}
        assert set(algos.values()) <= set(ALGORITHMS)
        assert all(p.source in ("predicted", "probed", "remembered", "forced", "default")
                   for p in ex.plan.conv_plans)

    def test_forced_baseline_algorithm(self):
        with ConvolutionEngine() as eng:
            ex = _assert_graph_faithful(eng, residual_block(c=8, size=8),
                                        algorithm="im2col")
        assert all(p.algorithm == "im2col" for p in ex.plan.conv_plans)
        # Baselines honor out=, so the arena path stays copy-free too.
        assert all(p.writes_in_place for p in ex.plan.conv_plans)

    def test_backend_with_baseline_algorithm_contradiction(self):
        with ConvolutionEngine() as eng:
            with pytest.raises(ValueError, match="winograd"):
                plan_graph(residual_block(c=8, size=8), eng,
                           backend="thread", algorithm="fft")

    def test_graph_path_matches_sequential_forward_bitwise(self):
        """The importer + graph executor reproduce SequentialConvNet's
        forward pass bit for bit (same engine, same fmr, same op order)."""
        net = scaled_vgg()
        net.initialize(np.random.default_rng(0))
        g = from_sequential(net)
        x = np.random.default_rng(1).standard_normal(net.input_shape).astype(np.float32)
        with ConvolutionEngine(backend="fused") as eng:
            want = net.forward(x, engine=eng)
            got = eng.run_graph(g, x)[g.outputs[0]]
        np.testing.assert_array_equal(got, want)

    def test_run_graph_convenience_equals_executor(self):
        g = residual_block(c=8, size=8)
        feeds = _feeds(g)
        with ConvolutionEngine() as eng:
            a = eng.run_graph(g, feeds)
            b = GraphExecutor(g, eng).run(feeds)
        for k in a:
            np.testing.assert_array_equal(a[k], b[k])


# ----------------------------------------------------------------------
# Topology fuzzing vs the oracle
# ----------------------------------------------------------------------
class TestTopologyFuzz:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_dags_match_naive_and_oracle(self, seed):
        rng = np.random.default_rng(seed)
        g = random_graph(rng)
        with ConvolutionEngine() as eng:
            _assert_graph_faithful(eng, g, seed=seed)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_3d_dags(self, seed):
        rng = np.random.default_rng(100 + seed)
        g = random_graph(rng, ndim=3, max_nodes=5)
        with ConvolutionEngine() as eng:
            _assert_graph_faithful(eng, g, seed=seed)

    def test_fuzzer_emits_branching_topologies(self):
        """The fuzzer must actually produce fan-out/merge shapes, or the
        oracle fuzzing above only ever sees chains."""
        merges = fanouts = 0
        for seed in range(40):
            g = random_graph(np.random.default_rng(seed))
            uses: dict[str, int] = {}
            for n in g.nodes:
                if n.op in ("add", "mul") and len(set(n.inputs)) == 2:
                    merges += 1
                for t in n.inputs:
                    uses[t] = uses.get(t, 0) + 1
            fanouts += sum(1 for c in uses.values() if c > 1)
        assert merges > 0 and fanouts > 0


# ----------------------------------------------------------------------
# Fusion + arena reuse
# ----------------------------------------------------------------------
class TestFusionAndArena:
    def test_fused_path_zero_interlayer_copies(self):
        """The tentpole's arena claim: on the fused backend every conv
        writes straight into the arena (or the output buffer), so the
        inter-layer copy counter stays at zero."""
        g = graph_scaled_vgg()
        with ConvolutionEngine(backend="fused") as eng:
            ex = GraphExecutor(g, eng)
            ex.run(_feeds(g))
            assert eng.metrics.counter_value("graph.interlayer_copies") == 0
            # All three ReLUs folded into their convs' stage-3 writes.
            assert eng.metrics.counter_value("graph.fused_epilogues") == 3
            assert eng.metrics.counter_value("graph.runs") == 1
        assert set(ex.plan.folded_into) == {"relu1", "relu2", "relu3"}
        assert all(p.writes_in_place for p in ex.plan.conv_plans)

    def test_non_inplace_backend_counts_copies(self):
        """The thread backend returns private heap arrays; every conv
        whose activation feeds a later node costs one inter-layer copy
        -- the cost the fused path's counter proves it avoids."""
        g = graph_scaled_vgg()
        with ConvolutionEngine(n_workers=2) as eng:
            GraphExecutor(g, eng, backend="thread").run(_feeds(g))
            # conv1 and conv2 feed their pools; conv3's chain ends the graph.
            assert eng.metrics.counter_value("graph.interlayer_copies") == 2

    def test_fusion_respects_fanout_and_outputs(self):
        """A fan-out edge or a declared graph output stops the chain."""
        g = residual_block(c=8, size=8)
        with ConvolutionEngine() as eng:
            plan = GraphExecutor(g, eng).plan
            # r1 rides on c1; sum+out ride on c2 (skip operand x is a
            # graph input, available before c2).
            assert plan.folded_into == {"r1": "c1", "sum": "c2", "out": "c2"}

            g2 = Graph()
            g2.add_input("x", (1, 8, 8, 8))
            g2.add("conv", "c1", "x",
                   weights=np.ones((8, 8, 3, 3), np.float32) * 0.01,
                   padding=(1, 1))
            g2.add("relu", "r1", "c1")
            g2.mark_output("c1", "r1")  # conv tensor escapes: no fold
            plan2 = GraphExecutor(g2, eng).plan
            assert plan2.folded_into == {}
            out = GraphExecutor(g2, eng).run(_feeds(g2))
            np.testing.assert_array_equal(
                out["r1"], np.maximum(out["c1"], 0.0)
            )

    def test_fuse_off_still_faithful(self):
        with ConvolutionEngine() as eng:
            ex = _assert_graph_faithful(eng, NETWORKS["residual"](), fuse=False)
        assert ex.plan.folded_into == {}
        assert all(not p.epilogues for p in ex.plan.conv_plans)

    def test_epilogue_ops_constant(self):
        assert set(EPILOGUE_OPS) == {"relu", "batchnorm", "add", "mul"}

    def test_process_backend_leaks_no_shm(self):
        from repro.core.shm import active_segment_names

        g = graph_scaled_c3d()
        with ConvolutionEngine(n_workers=2) as eng:
            _assert_graph_faithful(eng, g, backend="process")
        assert not active_segment_names()

    def test_worker_kill_mid_graph_falls_back_and_stays_clean(self):
        """REPRO_FAULT kill-worker during a graph pass: the engine's
        per-conv fallback chain absorbs the crash, the whole-graph
        result stays correct, and no shm segment outlives the engine."""
        from repro.core.shm import active_segment_names

        g = graph_scaled_vgg()
        feeds = _feeds(g)
        with ConvolutionEngine(
            backend="process", n_workers=2, worker_timeout=20.0,
            faults=FaultPlan.parse("kill-worker:1"),
        ) as eng:
            out = GraphExecutor(g, eng).run(feeds)
            assert eng.metrics.counter_value("engine.fallbacks") == 1
            assert eng.metrics.counter_value(
                "engine.fallbacks.process_to_thread") == 1
        oracle = oracle_execute(g, feeds)
        for name in out:
            scale = max(float(np.abs(oracle[name]).max()), 1.0)
            np.testing.assert_allclose(
                out[name].astype(np.float64), oracle[name],
                atol=ORACLE_ATOL * scale, rtol=0,
            )
        assert not active_segment_names()


# ----------------------------------------------------------------------
# Serve wiring
# ----------------------------------------------------------------------
def _serve(coro_fn, **server_kw):
    async def main():
        async with ConvServer(host="127.0.0.1", **server_kw) as server:
            return await coro_fn(server)
    return asyncio.run(main())


class TestServeGraph:
    def test_register_infer_roundtrip(self):
        g = residual_block(c=8, size=8, seed=3)
        feeds = _feeds(g, seed=9)
        x = feeds["x"]

        async def scenario(server):
            async with ServeClient(server.host, server.port) as client:
                reg = await client.register_graph("resnet", g)
                assert reg["convs"] == 2 and reg["folded"] == 3
                rep = await client.infer("resnet", x)
                assert rep.get("graph") is True
                return rep["output"]

        out = _serve(scenario)
        with ConvolutionEngine() as eng:
            want = eng.run_graph(g, feeds)[g.outputs[0]]
        scale = max(float(np.abs(want).max()), 1.0)
        np.testing.assert_allclose(out, want, atol=ORACLE_ATOL * scale, rtol=0)

    def test_graph_infer_validates_shape_and_name(self):
        g = residual_block(c=8, size=8)

        async def scenario(server):
            async with ServeClient(server.host, server.port) as client:
                await client.register_graph("m", g)
                with pytest.raises(ProtocolError) as exc:
                    await client.infer("m", np.zeros((1, 8, 4, 4), np.float32))
                assert exc.value.code == "bad_request"
                with pytest.raises(ProtocolError) as exc:
                    await client.infer("ghost", np.zeros((1, 8, 8, 8), np.float32))
                assert exc.value.code == "unknown_model"

        _serve(scenario)

    def test_register_invalid_graph_is_bad_request(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        g.add("add", "a", ("x", "ghost"))

        async def scenario(server):
            async with ServeClient(server.host, server.port) as client:
                with pytest.raises(ProtocolError) as exc:
                    await client.register_graph("bad", g)
                assert exc.value.code == "bad_request"

        _serve(scenario)
