"""Tests for the Fig. 6 batched-GEMM library models."""

import pytest

from repro.baselines.gemm_libs import (
    FIG6_SHAPES,
    GemmThroughput,
    libxsmm_like,
    mkl_like,
    ours_jit,
    speedup_table,
)
from repro.machine.spec import KNL_7210


class TestThroughputModels:
    def test_ours_picks_best_n_blk(self):
        t = ours_jit(64, 64)
        assert 6 <= t.n_blk <= 30
        # Tuning helps: the chosen n_blk beats the smallest option.
        worst = ours_jit(64, 64, n_blk_values=(6,))
        assert t.flops_per_cycle >= worst.flops_per_cycle

    def test_libxsmm_fixed_16(self):
        assert libxsmm_like(64, 64).n_blk == 16

    def test_gflops_scaling(self):
        t = ours_jit(64, 64)
        assert t.gflops(KNL_7210) == pytest.approx(
            t.flops_per_cycle * KNL_7210.frequency_hz / 1e9
        )

    def test_mkl_overhead_hurts_small_shapes_most(self):
        small = mkl_like(16, 16)
        large = mkl_like(128, 128)
        ours_small = ours_jit(16, 16)
        ours_large = ours_jit(128, 128)
        gap_small = ours_small.flops_per_cycle / small.flops_per_cycle
        gap_large = ours_large.flops_per_cycle / large.flops_per_cycle
        assert gap_small > gap_large

    @pytest.mark.slow
    def test_nobody_exceeds_two_fma_per_cycle(self):
        """Physical sanity: flops/cycle <= 2 FMAs * 2 * 16 lanes = 64."""
        for c, cp in FIG6_SHAPES:
            for lib in (ours_jit(c, cp), mkl_like(c, cp), libxsmm_like(c, cp)):
                assert lib.flops_per_cycle <= 64.0 + 1e-9, lib

    def test_throughput_type(self):
        t = ours_jit(32, 32)
        assert isinstance(t, GemmThroughput)
        assert t.cycles_per_call > 0


class TestSpeedupTable:
    def test_rows_and_keys(self):
        rows = speedup_table([(32, 32), (64, 64)])
        assert len(rows) == 2
        assert set(rows[0]) >= {
            "v_shape", "ours_gflops", "speedup_vs_mkl", "speedup_vs_libxsmm",
        }

    @pytest.mark.slow
    def test_all_speedups_above_one(self):
        rows = speedup_table(FIG6_SHAPES)
        for r in rows:
            assert r["speedup_vs_mkl"] > 1.0, r
            assert r["speedup_vs_libxsmm"] > 1.0, r

    def test_shapes_all_within_l2_budget(self):
        for c, cp in FIG6_SHAPES:
            assert c * cp <= 128 * 128
            assert c % 16 == 0 and cp % 16 == 0
