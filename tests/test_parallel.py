"""Tests for the spin barrier and the fork-join runtime."""

import threading
import time

import numpy as np
import pytest

from repro.core.barrier import BarrierBroken, BarrierTimeout, SpinBarrier
from repro.core.parallel import ForkJoinPool
from repro.core.scheduling import GridSlice, static_schedule


class TestSpinBarrier:
    def test_single_party(self):
        b = SpinBarrier(1)
        assert b.wait() == 0
        assert b.wait() == 1
        assert b.passes == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SpinBarrier(0)
        with pytest.raises(ValueError):
            SpinBarrier(2, timeout=0)

    def test_synchronizes_threads(self):
        n = 4
        b = SpinBarrier(n)
        arrived = []
        released = []
        lock = threading.Lock()

        def worker(i):
            with lock:
                arrived.append(i)
            b.wait()
            with lock:
                released.append(i)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
        for t in threads[:-1]:
            t.start()
        time.sleep(0.05)
        assert released == []  # nobody passes until the last arrives
        threads[-1].start()
        for t in threads:
            t.join(timeout=5)
        assert sorted(released) == list(range(n))

    def test_reusable_generations(self):
        n = 3
        b = SpinBarrier(n)
        counter = {"v": 0}
        lock = threading.Lock()

        def worker():
            for _ in range(10):
                b.wait()
                with lock:
                    counter["v"] += 1
                b.wait()

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert counter["v"] == 30
        assert b.passes == 20

    def test_timeout_raises(self):
        b = SpinBarrier(2, timeout=0.1)
        with pytest.raises(BarrierTimeout):
            b.wait()

    def test_broken_after_abort(self):
        b = SpinBarrier(2)
        b.abort()
        with pytest.raises(BarrierBroken):
            b.wait()

    def test_parked_wait_survives_past_timeout(self):
        """``wait(park=True)`` is an idle park, not a deadlock: it must
        outlive the timeout and still release when the peer arrives."""
        b = SpinBarrier(2, timeout=0.05)
        b.PARK_SPIN_SECONDS = 0.01
        released = threading.Event()

        def parked():
            b.wait(park=True)
            released.set()

        t = threading.Thread(target=parked, daemon=True)
        t.start()
        time.sleep(0.2)  # well past the deadlock timeout
        assert not released.is_set()  # still parked, not aborted
        b.wait()  # peer arrives; parked waiter must release
        assert released.wait(1.0)
        t.join(1.0)

    def test_parked_wait_still_observes_abort(self):
        b = SpinBarrier(2, timeout=0.05)
        b.PARK_SPIN_SECONDS = 0.01
        failed = []

        def parked():
            try:
                b.wait(park=True)
            except BarrierBroken:
                failed.append(True)

        t = threading.Thread(target=parked, daemon=True)
        t.start()
        time.sleep(0.15)  # let the waiter degrade to the sleeping park
        b.abort()
        t.join(1.0)
        assert failed == [True]


class TestForkJoinPool:
    def test_executes_all_slices(self):
        grid = (4, 6)
        slices = static_schedule(grid, 3)
        done = np.zeros(grid, dtype=int)
        lock = threading.Lock()

        def stage(tid, sl: GridSlice):
            for task in sl.tasks():
                with lock:
                    done[task] += 1

        with ForkJoinPool(3) as pool:
            pool.run(stage, slices)
        assert (done == 1).all()

    def test_pool_reuse_across_forks(self):
        slices = static_schedule((8,), 2)
        hits = []
        lock = threading.Lock()

        def stage(tid, sl):
            with lock:
                hits.append(tid)

        with ForkJoinPool(2) as pool:
            for _ in range(5):
                pool.run(stage, slices)
            assert pool.joins == 5
        assert sorted(hits) == [0] * 5 + [1] * 5

    def test_worker_exception_propagates(self):
        slices = static_schedule((2,), 2)

        def stage(tid, sl):
            if tid == 1:
                raise RuntimeError("boom in worker")

        with ForkJoinPool(2) as pool:
            with pytest.raises(RuntimeError, match="boom in worker"):
                pool.run(stage, slices)
            # Pool still usable after a failure.
            pool.run(lambda tid, sl: None, slices)

    def test_slice_count_mismatch(self):
        with ForkJoinPool(2) as pool:
            with pytest.raises(ValueError, match="slices"):
                pool.run(lambda tid, sl: None, static_schedule((4,), 3))

    def test_idle_pool_survives_past_barrier_timeout(self):
        """A pool left idle beyond the barrier timeout (a serving pool
        between requests) must stay usable -- workers park, not abort."""
        slices = static_schedule((4,), 2)
        hits = []
        lock = threading.Lock()

        def stage(tid, sl):
            with lock:
                hits.append(tid)

        with ForkJoinPool(2, barrier_timeout=0.05) as pool:
            pool._barrier.PARK_SPIN_SECONDS = 0.01
            pool.run(stage, slices)
            time.sleep(0.3)  # idle well past the deadlock timeout
            pool.run(stage, slices)  # must not raise BarrierBroken
        assert sorted(hits) == [0, 0, 1, 1]

    def test_shutdown_idempotent(self):
        pool = ForkJoinPool(2)
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.run(lambda tid, sl: None, static_schedule((2,), 2))

    def test_validation(self):
        with pytest.raises(ValueError):
            ForkJoinPool(0)

    def test_parallel_stage_computes_correctly(self):
        """A real mini stage-1: per-thread tile transforms writing into a
        shared output; result matches the serial computation."""
        from repro.core.transforms import winograd_1d

        t = winograd_1d(2, 3)
        b = np.array([[float(x) for x in row] for row in t.b])
        rng = np.random.default_rng(0)
        tiles = rng.normal(size=(16, 4))
        out = np.zeros((16, 4))
        slices = static_schedule((16,), 4)

        def stage(tid, sl):
            for (i,) in sl.tasks():
                out[i] = b @ tiles[i]

        with ForkJoinPool(4) as pool:
            pool.run(stage, slices)
        np.testing.assert_allclose(out, tiles @ b.T, rtol=1e-12)
