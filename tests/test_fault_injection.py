"""Fault-injection suite: prove the serving stack degrades gracefully.

Each test arms a :class:`~repro.obs.faults.FaultPlan` and asserts the
documented recovery path:

* ``kill-worker`` mid-request -> the engine reroutes down the fallback
  chain (``process -> thread -> blocked``), the request still returns an
  oracle-correct output, exactly one fallback event is recorded, and
  the crashed pool self-heals (respawns) for the next request;
* exhausting the respawn budget surfaces ONE clean error instead of
  thrashing respawns;
* ``corrupt-workspace`` is caught by the CRC integrity check and the
  poisoned output is never returned;
* ``raise-worker`` (in-stage exception) falls back while the pool
  itself survives;
* ``delay-barrier`` below the watchdog is a benign straggler round,
  above it a wedged-worker crash.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocking import BlockingConfig
from repro.core.convolution import WinogradPlan
from repro.core.engine import ConvolutionEngine
from repro.core.fmr import FmrSpec
from repro.core.parallel_process import (
    ProcessWinogradExecutor,
    WorkerCrashError,
    WorkerError,
    WorkspaceCorruptionError,
)
from repro.nets.reference import direct_convolution
from repro.obs.faults import FAULT_ENV, FaultPlan, FaultSpec

BLK = BlockingConfig(n_blk=6, c_blk=16, cprime_blk=16, simd_width=8)
SPEC = FmrSpec(m=(2, 2), r=(3, 3))


def _data(seed=0, c=16, hw=10):
    rng = np.random.default_rng(seed)
    images = rng.standard_normal((1, c, hw, hw)).astype(np.float32)
    kernels = (rng.standard_normal((c, c, 3, 3)) * 0.2).astype(np.float32)
    return images, kernels


def _oracle(images, kernels, padding=(0, 0)):
    return direct_convolution(
        images.astype(np.float64), kernels.astype(np.float64), padding=padding
    )


def _executor(faults=None, respawn_budget=2, timeout=20.0, hw=10):
    images, kernels = _data(hw=hw)
    plan = WinogradPlan(
        spec=SPEC, input_shape=images.shape, c_out=kernels.shape[1],
        padding=(0, 0), dtype=np.float32,
    )
    return ProcessWinogradExecutor(
        plan=plan, blocking=BLK, n_workers=2, simd_width=8,
        timeout=timeout, faults=faults, respawn_budget=respawn_budget,
    ), images, kernels


# ----------------------------------------------------------------------
# FaultPlan parsing / budget semantics
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_single(self):
        plan = FaultPlan.parse("kill-worker:1")
        assert plan.specs == [FaultSpec("kill-worker", 1)]

    def test_parse_multi_with_param(self):
        plan = FaultPlan.parse("delay-barrier:2:0.25, raise-worker")
        d, r = plan.specs
        assert (d.kind, d.count, d.param) == ("delay-barrier", 2, 0.25)
        assert (r.kind, r.count) == ("raise-worker", 1)

    def test_parse_default_param(self):
        (spec,) = FaultPlan.parse("delay-barrier:1").specs
        assert spec.param == 0.05

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("explode:1")

    def test_parse_rejects_zero_count(self):
        with pytest.raises(ValueError, match="count must be >= 1"):
            FaultPlan.parse("kill-worker:0")

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("kill-worker:1:2:3")

    def test_from_env(self):
        assert FaultPlan.from_env(environ={}) is None
        assert FaultPlan.from_env(environ={FAULT_ENV: "  "}) is None
        plan = FaultPlan.from_env(environ={FAULT_ENV: "raise-worker:3"})
        assert plan.specs[0].count == 3

    def test_budget_consumed_exactly(self):
        plan = FaultPlan.parse("kill-worker:2")
        assert plan.should_fire("kill-worker") is not None
        assert plan.should_fire("raise-worker") is None  # wrong site
        assert plan.should_fire("kill-worker") is not None
        assert plan.should_fire("kill-worker") is None  # budget spent
        assert plan.fired() == {"kill-worker": 2}
        assert plan.exhausted

    def test_engine_reads_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "raise-worker:1")
        with ConvolutionEngine() as eng:
            assert eng.faults is not None
            assert eng.faults.specs[0].kind == "raise-worker"


# ----------------------------------------------------------------------
# Engine-level fallback chain
# ----------------------------------------------------------------------
class TestFallbackChain:
    def test_kill_worker_falls_back_and_stays_correct(self):
        images, kernels = _data()
        with ConvolutionEngine(
            backend="process", n_workers=2, worker_timeout=20.0,
            faults=FaultPlan.parse("kill-worker:1"),
        ) as eng:
            out = eng.run(images, kernels)
            np.testing.assert_allclose(out, _oracle(images, kernels), atol=1e-3)
            m = eng.metrics
            assert m.counter_value("engine.fallbacks") == 1
            assert m.counter_value("engine.fallbacks.process_to_thread") == 1
            assert m.counter_value("process.crashes") == 1
            (ev,) = eng.tracer.spans("fallback")
            assert ev.attrs["source"] == "process"
            assert ev.attrs["target"] == "thread"
            assert ev.attrs["error"] == "WorkerCrashError"
            (req,) = eng.tracer.spans("request")
            assert req.attrs["fallback"] == "process->thread"

    def test_pool_self_heals_after_crash(self):
        images, kernels = _data()
        with ConvolutionEngine(
            backend="process", n_workers=2, worker_timeout=20.0,
            faults=FaultPlan.parse("kill-worker:1"),
        ) as eng:
            eng.run(images, kernels)  # crashes + falls back
            out = eng.run(images, kernels)  # respawned pool serves this one
            np.testing.assert_allclose(out, _oracle(images, kernels), atol=1e-3)
            assert eng.metrics.counter_value("process.respawns") == 1
            assert eng.metrics.counter_value("engine.fallbacks") == 1  # still 1

    def test_corrupt_workspace_detected_and_rerouted(self):
        images, kernels = _data()
        with ConvolutionEngine(
            backend="process", n_workers=2, worker_timeout=20.0,
            faults=FaultPlan.parse("corrupt-workspace:1"),
        ) as eng:
            out = eng.run(images, kernels)
            np.testing.assert_allclose(out, _oracle(images, kernels), atol=1e-3)
            assert eng.metrics.counter_value("process.corruptions") == 1
            (ev,) = eng.tracer.spans("fallback")
            assert ev.attrs["error"] == "WorkspaceCorruptionError"

    def test_raise_worker_falls_back_pool_survives(self):
        images, kernels = _data()
        with ConvolutionEngine(
            backend="process", n_workers=2, worker_timeout=20.0,
            faults=FaultPlan.parse("raise-worker:1"),
        ) as eng:
            out = eng.run(images, kernels)
            np.testing.assert_allclose(out, _oracle(images, kernels), atol=1e-3)
            assert eng.metrics.counter_value("process.worker_errors") == 1
            # In-stage exceptions do NOT kill the pool: no crash, no respawn.
            assert eng.metrics.counter_value("process.crashes") == 0
            eng.run(images, kernels)
            assert eng.metrics.counter_value("process.respawns") == 0

    def test_small_delay_is_benign(self):
        images, kernels = _data()
        with ConvolutionEngine(
            backend="process", n_workers=2, worker_timeout=20.0,
            faults=FaultPlan.parse("delay-barrier:1:0.02"),
        ) as eng:
            out = eng.run(images, kernels)
            np.testing.assert_allclose(out, _oracle(images, kernels), atol=1e-3)
            assert eng.metrics.counter_value("engine.fallbacks") == 0

    def test_delay_beyond_watchdog_is_a_crash(self):
        images, kernels = _data()
        with ConvolutionEngine(
            backend="process", n_workers=2, worker_timeout=1.0,
            faults=FaultPlan.parse("delay-barrier:1:5.0"),
        ) as eng:
            out = eng.run(images, kernels)
            np.testing.assert_allclose(out, _oracle(images, kernels), atol=1e-3)
            assert eng.metrics.counter_value("process.crashes") == 1
            assert eng.metrics.counter_value("engine.fallbacks") == 1

    def test_fallback_disabled_propagates_the_crash(self):
        images, kernels = _data()
        with ConvolutionEngine(
            backend="process", n_workers=2, worker_timeout=20.0,
            fallback=False, faults=FaultPlan.parse("kill-worker:1"),
        ) as eng:
            with pytest.raises(WorkerCrashError):
                eng.run(images, kernels)
            assert eng.metrics.counter_value("engine.fallbacks") == 0

    def test_thread_failure_falls_back_to_blocked(self):
        """The chain's second hop: thread -> blocked on a worker error."""
        images, kernels = _data()
        with ConvolutionEngine(backend="thread", n_workers=2) as eng:
            # Sabotage the cached thread executor so its next run fails.
            eng.run(images, kernels)  # populate the plan cache

            entry = next(iter(eng.plans._entries.values()))
            execu = entry.parallel_executor(eng.n_workers)
            orig = execu.pool.run

            def broken_run(fn, schedule):
                raise WorkerError("injected thread-pool failure")

            execu.pool.run = broken_run
            try:
                out = eng.run(images, kernels)
            finally:
                execu.pool.run = orig
            np.testing.assert_allclose(out, _oracle(images, kernels), atol=1e-3)
            assert (
                eng.metrics.counter_value("engine.fallbacks.thread_to_blocked")
                == 1
            )

    def test_close_during_inflight_fallback_sweeps_everything(self, monkeypatch):
        """``close()`` landing while a request is mid-fallback must not
        leak the plan entries (pools, shared memory) that the fallback
        rebuilds *after* close already swept the cache.

        Sequence forced here: a worker crash reroutes the request to the
        thread backend; close() runs after the crash but before the
        fallback dispatch; the fallback then repopulates the plan cache
        with a fresh thread-pool entry.  The draining request must
        re-run the sweep on its way out, leaving the engine truly closed
        (empty cache, no live shm segments -- the session-wide shm-leak
        fixture backstops the latter).
        """
        import threading

        from repro.core.shm import active_segment_names

        images, kernels = _data()
        engine = ConvolutionEngine(
            backend="process", n_workers=2, worker_timeout=20.0,
            faults=FaultPlan.parse("kill-worker:1"),
        )
        orig = engine._dispatch
        crashed = threading.Event()
        closed = threading.Event()

        def gated(backend, *a, **k):
            if backend == "thread":  # the fallback attempt, post-crash
                crashed.set()
                assert closed.wait(20), "close() never arrived"
            return orig(backend, *a, **k)

        monkeypatch.setattr(engine, "_dispatch", gated)
        result: dict = {}

        def request():
            try:
                result["out"] = engine.run(images, kernels)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                result["err"] = exc

        t = threading.Thread(target=request)
        t.start()
        assert crashed.wait(30), "worker crash / fallback never happened"
        engine.close()  # lands while the fallback is in flight
        closed.set()
        t.join(30)
        assert not t.is_alive()
        assert "err" not in result, f"request failed: {result.get('err')!r}"
        # The rerouted request still produced the right convolution...
        np.testing.assert_allclose(
            result["out"], _oracle(images, kernels), atol=1e-3
        )
        # ...and its exit swept the entries the fallback re-created.
        assert len(engine.plans) == 0
        assert not active_segment_names()
        # close() after the sweep stays a no-op.
        engine.close()
        assert len(engine.plans) == 0


# ----------------------------------------------------------------------
# Executor-level self-healing
# ----------------------------------------------------------------------
class TestRespawnBudget:
    def test_respawn_budget_exhaustion_is_a_clean_error(self):
        execu, images, kernels = _executor(
            faults=FaultPlan.parse("kill-worker:9"), respawn_budget=1
        )
        with execu:
            with pytest.raises(WorkerCrashError):
                execu.execute(images, kernels)  # crash #1
            with pytest.raises(WorkerCrashError):
                execu.execute(images, kernels)  # respawn #1, crash #2
            assert execu.respawns == 1
            with pytest.raises(WorkerCrashError, match="respawn budget"):
                execu.execute(images, kernels)  # budget spent: clean error
            assert execu.respawns == 1  # no further respawn attempts
            assert not execu.healthy

    def test_zero_budget_breaks_on_first_crash(self):
        execu, images, kernels = _executor(
            faults=FaultPlan.parse("kill-worker:1"), respawn_budget=0
        )
        with execu:
            with pytest.raises(WorkerCrashError):
                execu.execute(images, kernels)
            with pytest.raises(WorkerCrashError, match="respawn budget"):
                execu.execute(images, kernels)

    def test_successful_respawn_restores_correctness(self):
        execu, images, kernels = _executor(
            faults=FaultPlan.parse("kill-worker:1"), respawn_budget=2
        )
        with execu:
            assert execu.healthy
            with pytest.raises(WorkerCrashError):
                execu.execute(images, kernels)
            assert not execu.healthy
            out = execu.execute(images, kernels)
            assert execu.healthy
            np.testing.assert_allclose(out, _oracle(images, kernels), atol=1e-3)
            assert execu.crashes == 1 and execu.respawns == 1

    def test_corruption_check_can_be_disabled(self):
        execu, images, kernels = _executor(
            faults=FaultPlan.parse("corrupt-workspace:1")
        )
        execu.verify_workspace = False
        with execu:
            # Scribbling one input element goes undetected by design...
            out = execu.execute(images, kernels)
            # ...and merely perturbs the output instead of raising.
            assert out.shape == _oracle(images, kernels).shape

    def test_corruption_raises_at_executor_level(self):
        execu, images, kernels = _executor(
            faults=FaultPlan.parse("corrupt-workspace:1")
        )
        with execu:
            with pytest.raises(WorkspaceCorruptionError, match="checksum"):
                execu.execute(images, kernels)
            # The pool itself is fine: the next request succeeds.
            out = execu.execute(images, kernels)
            np.testing.assert_allclose(out, _oracle(images, kernels), atol=1e-3)
            assert execu.respawns == 0
