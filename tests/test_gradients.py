"""Tests for the training backward passes and workspace accounting."""

import numpy as np
import pytest

from repro.core.convolution import WinogradPlan, max_workspace_bytes
from repro.core.fmr import FmrSpec
from repro.core.gradients import flip_kernels, weight_gradient, winograd_data_gradient
from repro.nets.reference import direct_convolution


def numerical_data_gradient(images, kernels, padding, grad_out, eps=1e-6):
    """Finite-difference check of a few random input coordinates."""
    rng = np.random.default_rng(0)
    coords = [
        tuple(rng.integers(0, s) for s in images.shape) for _ in range(4)
    ]
    grads = []
    for c in coords:
        plus = images.copy()
        plus[c] += eps
        minus = images.copy()
        minus[c] -= eps
        lp = (direct_convolution(plus, kernels, padding) * grad_out).sum()
        lm = (direct_convolution(minus, kernels, padding) * grad_out).sum()
        grads.append((lp - lm) / (2 * eps))
    return coords, grads


class TestFlipKernels:
    def test_shape_and_content(self):
        k = np.arange(2 * 3 * 2 * 2, dtype=float).reshape(2, 3, 2, 2)
        f = flip_kernels(k)
        assert f.shape == (3, 2, 2, 2)
        assert f[1, 0, 0, 0] == k[0, 1, 1, 1]


class TestDataGradient:
    @pytest.mark.parametrize("pad", [0, 1])
    def test_matches_finite_differences(self, pad):
        rng = np.random.default_rng(1)
        images = rng.normal(size=(1, 2, 7, 7))
        kernels = rng.normal(size=(2, 3, 3, 3))
        out = direct_convolution(images, kernels, padding=(pad, pad))
        grad_out = rng.normal(size=out.shape)
        grad_in = winograd_data_gradient(
            grad_out, kernels, padding=(pad, pad), dtype=np.float64
        )
        assert grad_in.shape == images.shape
        coords, grads = numerical_data_gradient(
            images, kernels, (pad, pad), grad_out
        )
        for c, g in zip(coords, grads):
            assert grad_in[c] == pytest.approx(g, rel=1e-4, abs=1e-6)

    def test_3d(self):
        rng = np.random.default_rng(2)
        images = rng.normal(size=(1, 2, 5, 5, 5))
        kernels = rng.normal(size=(2, 2, 3, 3, 3))
        out = direct_convolution(images, kernels)
        grad_out = rng.normal(size=out.shape)
        grad_in = winograd_data_gradient(grad_out, kernels, dtype=np.float64)
        assert grad_in.shape == images.shape
        coords, grads = numerical_data_gradient(images, kernels, (0, 0, 0), grad_out)
        for c, g in zip(coords, grads):
            assert grad_in[c] == pytest.approx(g, rel=1e-4, abs=1e-6)

    def test_excess_padding_rejected(self):
        with pytest.raises(ValueError, match="padding"):
            winograd_data_gradient(
                np.zeros((1, 1, 4, 4)), np.zeros((1, 1, 3, 3)), padding=(3, 3)
            )


class TestWeightGradient:
    def test_matches_finite_differences(self):
        rng = np.random.default_rng(3)
        images = rng.normal(size=(2, 2, 6, 6))
        kernels = rng.normal(size=(2, 2, 3, 3))
        out = direct_convolution(images, kernels, padding=(1, 1))
        grad_out = rng.normal(size=out.shape)
        grad_w = weight_gradient(images, grad_out, (3, 3), padding=(1, 1))
        assert grad_w.shape == kernels.shape
        eps = 1e-6
        for c in [(0, 0, 0, 0), (1, 1, 2, 2), (0, 1, 1, 0)]:
            plus = kernels.copy()
            plus[c] += eps
            minus = kernels.copy()
            minus[c] -= eps
            lp = (direct_convolution(images, plus, (1, 1)) * grad_out).sum()
            lm = (direct_convolution(images, minus, (1, 1)) * grad_out).sum()
            assert grad_w[c] == pytest.approx((lp - lm) / (2 * eps), rel=1e-4)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="spatial"):
            weight_gradient(
                np.zeros((1, 1, 6, 6)), np.zeros((1, 1, 3, 3)), (3, 3)
            )
        with pytest.raises(ValueError, match="batch"):
            weight_gradient(
                np.zeros((2, 1, 6, 6)), np.zeros((1, 1, 4, 4)), (3, 3)
            )


class TestWorkspace:
    def make_plan(self, size=8):
        return WinogradPlan(
            spec=FmrSpec.uniform(2, 2, 3),
            input_shape=(1, 16, size, size),
            c_out=16,
            padding=(0, 0),
        )

    def test_components_sum(self):
        ws = self.make_plan().workspace_bytes()
        assert ws["total"] == ws["U"] + ws["V"] + ws["X"] + ws["output_tiles"]
        # U: T * NB * C * 4 bytes.
        plan = self.make_plan()
        assert ws["U"] == plan.t_matrices * plan.gemm_rows * 16 * 4

    def test_network_maximum(self):
        plans = [self.make_plan(8), self.make_plan(16)]
        assert max_workspace_bytes(plans) == plans[1].workspace_bytes()["total"]
        with pytest.raises(ValueError):
            max_workspace_bytes([])

    def test_small_fraction_of_activations(self):
        """Sec. 4.4: for a deep network the workspace is a small fraction
        of total activation memory (which scales with layer count)."""
        plan = self.make_plan(16)
        act_bytes_per_layer = np.prod(plan.input_shape) * 4
        n_layers = 20
        assert plan.workspace_bytes()["total"] < n_layers * act_bytes_per_layer
