"""Tests for the recursive GCD static scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocking import BlockingConfig
from repro.core.scheduling import (
    GridSlice,
    schedule_stats,
    stage1_grid,
    stage2_grid,
    stage3_grid,
    static_schedule,
)


def assert_exact_cover(grid, slices):
    """Every task appears in exactly one slice."""
    seen = {}
    for tid, sl in enumerate(slices):
        for task in sl.tasks():
            assert task not in seen, f"task {task} in threads {seen[task]} and {tid}"
            seen[task] = tid
    total = 1
    for p in grid:
        total *= p
    assert len(seen) == total


class TestGridSlice:
    def test_task_count(self):
        sl = GridSlice(ranges=((0, 2), (1, 4)))
        assert sl.task_count == 6
        assert list(sl.tasks())[0] == (0, 1)

    def test_contains(self):
        sl = GridSlice(ranges=((0, 2), (1, 4)))
        assert sl.contains((1, 3))
        assert not sl.contains((2, 3))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            GridSlice(ranges=((3, 2),))


class TestStaticSchedule:
    def test_power_of_two_even(self):
        """B, C/S powers of two -> perfectly even split (the common case
        the paper designs for)."""
        grid = (64, 4, 8, 8)  # B x C/S x N_H x N_W
        slices = static_schedule(grid, 64)
        stats = schedule_stats(slices)
        assert stats.imbalance == 1.0
        assert stats.min_tasks == stats.max_tasks
        assert_exact_cover(grid, slices)

    def test_slices_most_significant_first(self):
        """With GCD available in dim 0, only dim 0 is sliced -- threads
        keep whole rows of less significant dimensions (cache locality)."""
        slices = static_schedule((8, 10), 8)
        for sl in slices:
            assert sl.ranges[1] == (0, 10)

    def test_gcd_path_multi_level(self):
        # 6 threads, grid (4, 9): gcd(4,6)=2 -> two halves x 3 threads;
        # then gcd(2,3)=1, gcd(9,3)=3 -> split dim 1.
        grid = (4, 9)
        slices = static_schedule(grid, 6)
        assert_exact_cover(grid, slices)
        assert schedule_stats(slices).imbalance == 1.0

    def test_uneven_fallback(self):
        """Coprime grid/threads: 'slightly more work to some threads'."""
        grid = (7, 5)
        slices = static_schedule(grid, 3)
        assert_exact_cover(grid, slices)
        stats = schedule_stats(slices)
        assert stats.max_tasks - stats.min_tasks <= 5  # one row of dim 1

    def test_more_threads_than_tasks(self):
        grid = (3,)
        slices = static_schedule(grid, 5)
        assert_exact_cover(grid, slices)
        assert len(slices) == 5
        assert schedule_stats(slices).min_tasks == 0

    def test_single_thread(self):
        grid = (4, 5)
        slices = static_schedule(grid, 1)
        assert len(slices) == 1
        assert slices[0].task_count == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            static_schedule((4,), 0)
        with pytest.raises(ValueError):
            static_schedule((), 2)
        with pytest.raises(ValueError):
            static_schedule((0,), 2)

    @settings(max_examples=60, deadline=None)
    @given(
        grid=st.lists(st.integers(1, 12), min_size=1, max_size=4).map(tuple),
        k=st.integers(1, 16),
    )
    def test_cover_property(self, grid, k):
        """Exact cover and sane imbalance for arbitrary grids."""
        slices = static_schedule(grid, k)
        assert len(slices) == k
        assert_exact_cover(grid, slices)
        stats = schedule_stats(slices)
        total = stats.total_tasks
        # max cannot be worse than one "slab" above the even share along
        # any single dimension; a loose but meaningful bound:
        assert stats.max_tasks * k <= total * (1 + max(grid)) or total < k

    @settings(max_examples=30, deadline=None)
    @given(
        exp_b=st.integers(0, 4),
        exp_c=st.integers(0, 4),
        exp_k=st.integers(0, 6),
    )
    def test_power_of_two_always_even(self, exp_b, exp_c, exp_k):
        """Whenever the leading dims' product is divisible by the thread
        count, the schedule is perfectly even."""
        grid = (2**exp_b, 2**exp_c, 3)
        k = 2**exp_k
        if 2 ** (exp_b + exp_c) % k:
            return
        slices = static_schedule(grid, k)
        assert schedule_stats(slices).imbalance == 1.0


class TestStageGrids:
    def test_stage1(self):
        assert stage1_grid(64, 64, (56, 56)) == (64, 4, 56, 56)
        with pytest.raises(ValueError):
            stage1_grid(64, 60, (56, 56))

    def test_stage2(self):
        blk = BlockingConfig(n_blk=28, c_blk=64, cprime_blk=64)
        assert stage2_grid(36, 256, 3136, blk) == (36, 4, 112)
        with pytest.raises(ValueError):
            stage2_grid(36, 250, 3136, blk)

    def test_stage2_ceil_rows(self):
        blk = BlockingConfig(n_blk=30, c_blk=64, cprime_blk=64)
        assert stage2_grid(16, 64, 100, blk) == (16, 1, 4)

    def test_stage3(self):
        assert stage3_grid(64, 196, 512) == (64 * 196 * 32,)
        with pytest.raises(ValueError):
            stage3_grid(64, 196, 500)
