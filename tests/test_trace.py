"""Tests for the instruction-trace containers and scheduling bridge."""

import pytest

from repro.core.codelets import VectorOp, generate_codelet
from repro.core.transforms import winograd_1d
from repro.machine.codelet_trace import schedule_ops
from repro.machine.trace import (
    Instr,
    InstrKind,
    MemLevel,
    fma,
    load,
    prefetch,
    store,
)


class TestConstructors:
    def test_fma(self):
        i = fma("acc", "a", "b")
        assert i.kind == InstrKind.FMA
        assert i.dst == "acc"
        assert i.srcs == ("acc", "a", "b")  # dst is read-modify-write

    def test_load_levels(self):
        assert load("v").level == MemLevel.L1
        assert load("v", MemLevel.MEM).level == MemLevel.MEM

    def test_store_kinds(self):
        assert store("v").kind == InstrKind.STORE
        assert store("v", streaming=True).kind == InstrKind.STREAM_STORE
        assert store("v").srcs == ("v",)

    def test_prefetch_no_deps(self):
        p = prefetch()
        assert p.kind == InstrKind.PREFETCH
        assert p.dst is None
        assert p.srcs == ()

    def test_validation(self):
        with pytest.raises(ValueError, match="destination"):
            Instr(InstrKind.FMA, srcs=("a",))
        with pytest.raises(ValueError, match="source"):
            Instr(InstrKind.FMA, dst="x", srcs=())


class TestScheduleOps:
    def test_preserves_op_multiset(self):
        cod = generate_codelet(winograd_1d(4, 3).b)
        scheduled = schedule_ops(cod.ops)
        assert sorted(id(o) for o in scheduled) != None  # trivially valid
        assert len(scheduled) == len(cod.ops)
        assert {id(o) for o in scheduled} == {id(o) for o in cod.ops}

    def test_respects_raw_dependencies(self):
        ops = [
            VectorOp("load", "x0"),
            VectorOp("neg", "t", ("x0",)),
            VectorOp("add", "t", ("t", "x0")),
            VectorOp("store", "out0", ("t",)),
        ]
        scheduled = schedule_ops(ops)
        pos = {id(o): i for i, o in enumerate(scheduled)}
        assert pos[id(ops[0])] < pos[id(ops[1])] < pos[id(ops[2])] < pos[id(ops[3])]

    def test_respects_war(self):
        """A read of 't' must stay before the op that overwrites 't'."""
        ops = [
            VectorOp("load", "x0"),
            VectorOp("load", "x1"),
            VectorOp("neg", "t", ("x0",)),
            VectorOp("add", "y0", ("t", "x1")),   # reads t
            VectorOp("neg", "t", ("x1",)),        # overwrites t
            VectorOp("store", "out0", ("y0",)),
            VectorOp("store", "out1", ("t",)),
        ]
        scheduled = schedule_ops(ops)
        pos = {id(o): i for i, o in enumerate(scheduled)}
        assert pos[id(ops[3])] < pos[id(ops[4])]

    def test_interleaves_independent_rows(self):
        """Row-serial op lists get interleaved (the ILP win)."""
        ops = []
        for row in range(3):
            ops.append(VectorOp("load", f"x{row}"))
        for row in range(3):
            ops.append(VectorOp("neg", f"y{row}", (f"x{row}",)))
            ops.append(VectorOp("add", f"y{row}", (f"y{row}", f"x{row}")))
            ops.append(VectorOp("add", f"y{row}", (f"y{row}", f"x{row}")))
        scheduled = schedule_ops(ops)
        # After scheduling, the three first-level negs appear before any
        # third-level add: depth-ordered, i.e. rows run in lockstep.
        kinds_at = [
            (o.kind, o.dst) for o in scheduled if o.kind in ("neg", "add")
        ]
        first_add_idx = next(
            i for i, (k, _) in enumerate(kinds_at) if k == "add"
        )
        negs_before = sum(1 for k, _ in kinds_at[:first_add_idx] if k == "neg")
        assert negs_before == 3
