"""Table 3 -- element errors of Winograd convolution (E3).

This experiment is *fully real*: float32 numpy arithmetic against an
``np.longdouble`` direct-convolution ground truth, inputs from
U[-0.1, 0.1], Xavier kernels for the training rows and pre-trained-like
synthetic kernels for the inference rows (DESIGN.md documents that
substitution).

Expected shape (paper Sec. 5.3): errors grow by roughly an order of
magnitude with each tile-size step; F(6^2,3^2) (2D) and F(4x6^2,3^3)
(3D) stay below the ~1e-2 training-stability threshold; inference
kernels produce smaller errors than Xavier ones.
"""

from __future__ import annotations

from conftest import format_table, write_csv
from repro.nets.accuracy import (
    C3D_ACCURACY_SURROGATE,
    C3D_SPECS,
    VGG_ACCURACY_SURROGATE,
    VGG_SPECS,
    measure_accuracy,
)


def _table(layer, specs, net):
    rows = {}
    order = []
    for mode in ("train", "infer"):
        for row in measure_accuracy(layer, specs, mode):
            rows.setdefault(row.algorithm, {})[mode] = row.stats
            if row.algorithm not in order:
                order.append(row.algorithm)
    out = []
    for algo in order:
        r = rows[algo]
        out.append(
            [
                net,
                algo,
                f"{r['train'].max_error:.2E}",
                f"{r['train'].avg_error:.2E}",
                f"{r['infer'].max_error:.2E}",
                f"{r['infer'].avg_error:.2E}",
            ]
        )
    return out


def test_table3_accuracy(benchmark, results_dir):
    """[real] Regenerate both halves of Table 3."""

    def build():
        return (
            _table(VGG_ACCURACY_SURROGATE, VGG_SPECS, "VGG")
            + _table(C3D_ACCURACY_SURROGATE, C3D_SPECS, "C3D")
        )

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["net", "algorithm", "train_max", "train_avg", "infer_max", "infer_avg"]
    print("\nTable 3 [real] -- element errors vs long-double ground truth")
    print(format_table(headers, rows))
    write_csv(results_dir / "table3_accuracy.csv", headers, rows)

    by_algo = {(r[0], r[1]): [float(x) for x in r[2:]] for r in rows}

    # Average error grows monotonically with tile size (both nets).
    for net, specs in (("VGG", VGG_SPECS), ("C3D", C3D_SPECS)):
        train_avgs = [by_algo[(net, str(s))][1] for s in specs]
        assert train_avgs == sorted(train_avgs), (net, train_avgs)

    # The paper's usability thresholds: the training-safe tile sizes stay
    # well below 1e-2 average error, the largest benchmarked tiles are
    # orders of magnitude worse than the smallest.
    assert by_algo[("VGG", "F(6x6,3x3)")][1] < 1e-2
    assert by_algo[("C3D", "F(4x6x6,3x3x3)")][1] < 1e-2
    assert (
        by_algo[("VGG", "F(8x8,3x3)")][1]
        > 50 * by_algo[("VGG", "F(2x2,3x3)")][1]
    )

    # Inference (pre-trained-like) errors do not exceed training errors.
    for (net, algo), vals in by_algo.items():
        assert vals[3] <= vals[1] * 1.5, (net, algo)

    # Winograd with the smallest tile is comparable to direct float32.
    assert by_algo[("VGG", "F(2x2,3x3)")][1] < 10 * by_algo[("VGG", "direct")][1]


def test_table3_float64_extension(benchmark, results_dir):
    """[real] Extension: the instability is a float32 artifact.

    In float64 even the largest benchmarked tiles are ~7 orders of
    magnitude below the training threshold, confirming the paper's
    attribution of Table 3 to the 24-bit significand rather than to the
    algorithm itself.
    """
    import numpy as np

    from repro.core.convolution import winograd_convolution
    from repro.nets.initializers import uniform_images, xavier_kernels
    from repro.nets.reference import reference_convolution
    from repro.util.errors import element_errors

    def build():
        layer = VGG_ACCURACY_SURROGATE
        rng = np.random.default_rng(0)
        images = uniform_images(layer, rng, dtype=np.float64)
        kernels = xavier_kernels(layer, rng, dtype=np.float64)
        reference = reference_convolution(images, kernels)
        rows = []
        for spec in VGG_SPECS:
            out32 = winograd_convolution(
                images.astype(np.float32), kernels.astype(np.float32),
                spec, dtype=np.float32,
            )
            out64 = winograd_convolution(images, kernels, spec, dtype=np.float64)
            rows.append(
                [
                    str(spec),
                    f"{element_errors(out32, reference).avg_error:.2E}",
                    f"{element_errors(out64, reference).avg_error:.2E}",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["algorithm", "fp32_avg_err", "fp64_avg_err"]
    print("\nTable 3 extension [real] -- float64 removes the instability")
    print(format_table(headers, rows))
    write_csv(results_dir / "table3_float64.csv", headers, rows)

    for r in rows:
        assert float(r[2]) < 1e-9 * max(float(r[1]), 1e-30) or float(r[2]) < 1e-12
