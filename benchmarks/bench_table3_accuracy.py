"""Table 3 -- element errors of Winograd convolution (E3).

This experiment is *fully real*: float32 numpy arithmetic against an
``np.longdouble`` direct-convolution ground truth, inputs from
U[-0.1, 0.1], Xavier kernels for the training rows and pre-trained-like
synthetic kernels for the inference rows (DESIGN.md documents that
substitution).

Expected shape (paper Sec. 5.3): errors grow by roughly an order of
magnitude with each tile-size step; F(6^2,3^2) (2D) and F(4x6^2,3^3)
(3D) stay below the ~1e-2 training-stability threshold; inference
kernels produce smaller errors than Xavier ones.
"""

from __future__ import annotations

import json

from conftest import format_table, write_csv
from repro.nets.accuracy import (
    C3D_ACCURACY_SURROGATE,
    C3D_SPECS,
    NESTED_R3_REFERENCE_SURROGATE,
    VGG_ACCURACY_SURROGATE,
    VGG_SPECS,
    measure_accuracy,
    measure_nested_accuracy,
)


def _emit_json(results_dir, bench_header, section: str, rows) -> None:
    """Merge one table into ``BENCH_table3_accuracy.json``.

    Every emitter stamps the shared provenance header; tests in this
    file run in definition order, so read-modify-write is safe.
    """
    out = results_dir / "BENCH_table3_accuracy.json"
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload.update(bench_header)
    payload[section] = rows
    out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {out} [{section}]")


def _table(layer, specs, net):
    rows = {}
    order = []
    for mode in ("train", "infer"):
        for row in measure_accuracy(layer, specs, mode):
            rows.setdefault(row.algorithm, {})[mode] = row.stats
            if row.algorithm not in order:
                order.append(row.algorithm)
    out = []
    for algo in order:
        r = rows[algo]
        out.append(
            [
                net,
                algo,
                f"{r['train'].max_error:.2E}",
                f"{r['train'].avg_error:.2E}",
                f"{r['infer'].max_error:.2E}",
                f"{r['infer'].avg_error:.2E}",
            ]
        )
    return out


def test_table3_accuracy(benchmark, results_dir, bench_header):
    """[real] Regenerate both halves of Table 3."""

    def build():
        return (
            _table(VGG_ACCURACY_SURROGATE, VGG_SPECS, "VGG")
            + _table(C3D_ACCURACY_SURROGATE, C3D_SPECS, "C3D")
        )

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["net", "algorithm", "train_max", "train_avg", "infer_max", "infer_avg"]
    print("\nTable 3 [real] -- element errors vs long-double ground truth")
    print(format_table(headers, rows))
    write_csv(results_dir / "table3_accuracy.csv", headers, rows)
    _emit_json(
        results_dir, bench_header, "table3",
        [dict(zip(headers, r)) for r in rows],
    )

    by_algo = {(r[0], r[1]): [float(x) for x in r[2:]] for r in rows}

    # Average error grows monotonically with tile size (both nets).
    for net, specs in (("VGG", VGG_SPECS), ("C3D", C3D_SPECS)):
        train_avgs = [by_algo[(net, str(s))][1] for s in specs]
        assert train_avgs == sorted(train_avgs), (net, train_avgs)

    # The paper's usability thresholds: the training-safe tile sizes stay
    # well below 1e-2 average error, the largest benchmarked tiles are
    # orders of magnitude worse than the smallest.
    assert by_algo[("VGG", "F(6x6,3x3)")][1] < 1e-2
    assert by_algo[("C3D", "F(4x6x6,3x3x3)")][1] < 1e-2
    assert (
        by_algo[("VGG", "F(8x8,3x3)")][1]
        > 50 * by_algo[("VGG", "F(2x2,3x3)")][1]
    )

    # Inference (pre-trained-like) errors do not exceed training errors.
    for (net, algo), vals in by_algo.items():
        assert vals[3] <= vals[1] * 1.5, (net, algo)

    # Winograd with the smallest tile is comparable to direct float32.
    assert by_algo[("VGG", "F(2x2,3x3)")][1] < 10 * by_algo[("VGG", "direct")][1]


def test_table3_float64_extension(benchmark, results_dir):
    """[real] Extension: the instability is a float32 artifact.

    In float64 even the largest benchmarked tiles are ~7 orders of
    magnitude below the training threshold, confirming the paper's
    attribution of Table 3 to the 24-bit significand rather than to the
    algorithm itself.
    """
    import numpy as np

    from repro.core.convolution import winograd_convolution
    from repro.nets.initializers import uniform_images, xavier_kernels
    from repro.nets.reference import reference_convolution
    from repro.util.errors import element_errors

    def build():
        layer = VGG_ACCURACY_SURROGATE
        rng = np.random.default_rng(0)
        images = uniform_images(layer, rng, dtype=np.float64)
        kernels = xavier_kernels(layer, rng, dtype=np.float64)
        reference = reference_convolution(images, kernels)
        rows = []
        for spec in VGG_SPECS:
            out32 = winograd_convolution(
                images.astype(np.float32), kernels.astype(np.float32),
                spec, dtype=np.float32,
            )
            out64 = winograd_convolution(images, kernels, spec, dtype=np.float64)
            rows.append(
                [
                    str(spec),
                    f"{element_errors(out32, reference).avg_error:.2E}",
                    f"{element_errors(out64, reference).avg_error:.2E}",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["algorithm", "fp32_avg_err", "fp64_avg_err"]
    print("\nTable 3 extension [real] -- float64 removes the instability")
    print(format_table(headers, rows))
    write_csv(results_dir / "table3_float64.csv", headers, rows)

    for r in rows:
        assert float(r[2]) < 1e-9 * max(float(r[1]), 1e-30) or float(r[2]) < 1e-12


def test_table3_nested_extension(benchmark, results_dir, bench_header):
    """[real] Extension: nested Winograd restores large-r accuracy.

    One-level ``F(m, 7)`` error explodes with the tile (the Vandermonde
    conditioning Table 3 truncates at r = 3): by ``F(8x8, 7x7)`` the
    max element error crosses the 1e-2 training threshold.  The nested
    decomposition only ever composes F(m, 3) transforms, so its error
    stays within the single-level r = 3 budget -- measured against a
    *channel-matched* F(4, 3) reference (the nested inner problem
    accumulates over G*C = 576 channels).
    """
    from repro.core.fmr import FmrSpec

    def build():
        rows = []
        for mode in ("train", "infer"):
            for row in measure_nested_accuracy(mode=mode):
                rows.append([
                    "Stem7", row.algorithm, mode,
                    f"{row.stats.max_error:.2E}", f"{row.stats.avg_error:.2E}",
                ])
            for row in measure_accuracy(
                NESTED_R3_REFERENCE_SURROGATE,
                [FmrSpec.uniform(2, 4, 3)], mode,
            ):
                rows.append([
                    "r3-ref", row.algorithm, mode,
                    f"{row.stats.max_error:.2E}", f"{row.stats.avg_error:.2E}",
                ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["layer", "algorithm", "mode", "max_err", "avg_err"]
    print("\nTable 3 extension [real] -- nested vs one-level on r = 7")
    print(format_table(headers, rows))
    write_csv(results_dir / "table3_nested.csv", headers, rows)
    _emit_json(
        results_dir, bench_header, "nested_extension",
        [dict(zip(headers, r)) for r in rows],
    )

    err = {
        (r[0], r[1], r[2]): (float(r[3]), float(r[4])) for r in rows
    }
    nested = err[("Stem7", "nested[F(4,3)]", "train")][0]
    r3_budget = err[("r3-ref", "F(4x4,3x3)", "train")][0]

    # One-level error grows monotonically with the tile and crosses the
    # paper's 1e-2 training threshold by F(8x8, 7x7).
    one_level = [
        err[("Stem7", f"F({m}x{m},7x7)", "train")][0] for m in (2, 4, 8)
    ]
    assert one_level == sorted(one_level), one_level
    assert one_level[-1] > 1e-2, one_level

    # The acceptance gate: where one-level fp32 Winograd is unusable,
    # nested stays within 10x of the single-level r = 3 spec's budget.
    assert nested <= 10 * r3_budget, (nested, r3_budget)
    # ... and orders of magnitude below even the mid-size one-level tile.
    assert nested < err[("Stem7", "F(4x4,7x7)", "train")][0], (
        nested, one_level,
    )
