"""E26 (extension) -- serve-path load benchmark [real]: open-loop
traffic against the TCP front-end, batched vs per-request dispatch.

Every number the serving stack promises hinges on one claim: coalescing
same-shape requests into a single batched fork-join amortizes the
per-dispatch overhead (batcher wakeups, plan-cache lookups, stage
launch, barrier rounds) that per-request dispatch pays N times.  This
bench measures that claim end to end -- real TCP connections, the real
JSON-lines protocol, the real :class:`~repro.serve.DynamicBatcher` --
under open-loop traffic: every client submits its full request series
without waiting for replies, so the offered load does not slow down
when the server does (the closed-loop trap).

Two configurations, identical traffic (8 pipelined clients, one shared
model/shape so every request is coalescible):

* ``per_request`` -- ``max_batch=1``: the batcher degenerates to a
  FIFO; every request is its own engine dispatch.
* ``batched``     -- ``max_batch=8``: same queue, same window, but up
  to 8 requests share one dispatch.

Every response's digest is checked against a lone-engine oracle before
anything is timed into the record, so the throughput curve is a curve
of *correct* runs.  Results land in ``results/BENCH_serve_load.json``
(schema documented in DESIGN.md's E26 note) with p50/p95/p99 request
latency, completion throughput, and the observed batch-size
distribution for both configurations.

Acceptance gate: batched throughput >= 1.5x per-request throughput at
concurrency 8.  The gate needs real parallel slack to be meaningful on
every host class, so it follows the E22 convention: skipped (after the
JSON is written, so a non-run gate is a visible skip, never a silent
pass) in smoke mode and on single-core hosts, and made *mandatory* --
skips become failures -- when ``REPRO_REQUIRE_SERVE_GATE`` is set, as
the CI serve lane does on its multi-core runner.

Set ``REPRO_BENCH_SMOKE=1`` for a quick CI smoke run (fewer requests,
correctness + JSON emission only).
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import numpy as np
import pytest

from conftest import format_table
from repro.core.engine import ConvolutionEngine
from repro.serve import ConvServer, ServeClient, TenantQuota, tensor_digest

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
REQUIRE_GATE = os.environ.get("REPRO_REQUIRE_SERVE_GATE", "") not in ("", "0")
GATE_MIN = float(os.environ.get("REPRO_SERVE_GATE_MIN", "1.5"))

N_CLIENTS = 8
N_PER_CLIENT = 4 if SMOKE else 25
PADDING = (1, 1)


def _workload(seed=26):
    """One model, one shape: every request is coalescible with every
    other, so ``max_batch`` alone decides the dispatch granularity."""
    rng = np.random.default_rng(seed)
    ker = (rng.standard_normal((8, 8, 3, 3)) * 0.2).astype(np.float32)
    imgs = [
        rng.standard_normal((1, 8, 12, 12)).astype(np.float32)
        for _ in range(N_CLIENTS)
    ]
    return ker, imgs


def _oracle(ker, imgs):
    with ConvolutionEngine() as eng:
        return [
            tensor_digest(eng.run(img, ker, padding=PADDING)) for img in imgs
        ]


async def _open_loop_client(port, ker, img, expect, n_requests, first):
    """Submit the full series without awaiting (open loop), then gather;
    returns per-request latencies in seconds."""
    latencies = []
    async with ServeClient("127.0.0.1", port, tenant="load") as cli:
        if first:
            await cli.register("m", ker, list(PADDING))

        async def timed(fut, t0):
            rep = await fut
            latencies.append(time.perf_counter() - t0)
            assert rep["digest"] == expect, "corrupted response under load"
            return rep["batched"]

        tasks = []
        for _ in range(n_requests):
            t0 = time.perf_counter()
            fut = await cli.submit("m", img, respond="checksum")
            tasks.append(asyncio.create_task(timed(fut, t0)))
        batched = await asyncio.gather(*tasks)
    return latencies, batched


def _drive(max_batch, window_ms, ker, imgs, digests):
    """One configuration: boot a fresh server, blast the open-loop
    burst, return throughput + latency percentiles + batch stats."""

    async def main():
        async with ConvServer(
            host="127.0.0.1", max_batch=max_batch, window_ms=window_ms,
            max_pending=4096,
            # The burst is the point here: admit the whole open-loop
            # series so the two configs drain identical queues.
            default_quota=TenantQuota(max_pending=4096),
        ) as server:
            # Register once before the timed window.
            l0, _ = await _open_loop_client(
                server.port, ker, imgs[0], digests[0], 1, first=True
            )
            t0 = time.perf_counter()
            results = await asyncio.gather(*[
                _open_loop_client(server.port, ker, imgs[c], digests[c],
                                  N_PER_CLIENT, first=False)
                for c in range(N_CLIENTS)
            ])
            wall = time.perf_counter() - t0
            return wall, results

    wall, results = asyncio.run(main())
    latencies = np.array([s for lats, _ in results for s in lats])
    batch_sizes = np.array([b for _, bs in results for b in bs])
    n = latencies.size
    assert n == N_CLIENTS * N_PER_CLIENT  # zero dropped
    return {
        "max_batch": max_batch,
        "window_ms": window_ms,
        "requests": int(n),
        "wall_s": wall,
        "throughput_rps": n / wall,
        "latency_ms": {
            "p50": float(np.percentile(latencies, 50) * 1e3),
            "p95": float(np.percentile(latencies, 95) * 1e3),
            "p99": float(np.percentile(latencies, 99) * 1e3),
            "mean": float(latencies.mean() * 1e3),
            "max": float(latencies.max() * 1e3),
        },
        "batch_size": {
            "mean": float(batch_sizes.mean()),
            "max": int(batch_sizes.max()),
        },
    }


def test_serve_load(benchmark, results_dir, bench_header):
    """[real] open-loop TCP traffic: batched vs per-request dispatch."""
    cores = os.cpu_count() or 1
    ker, imgs = _workload()
    digests = _oracle(ker, imgs)

    def run():
        return {
            "per_request": _drive(1, 5.0, ker, imgs, digests),
            "batched": _drive(8, 5.0, ker, imgs, digests),
        }

    configs = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = (
        configs["batched"]["throughput_rps"]
        / configs["per_request"]["throughput_rps"]
    )

    rows = [
        [name, c["max_batch"], c["requests"], f"{c['throughput_rps']:.0f}",
         f"{c['latency_ms']['p50']:.1f}", f"{c['latency_ms']['p99']:.1f}",
         f"{c['batch_size']['mean']:.1f}", c["batch_size"]["max"]]
        for name, c in configs.items()
    ]
    print(f"\nServe load [real] -- {N_CLIENTS} open-loop clients x "
          f"{N_PER_CLIENT} requests, host cores: {cores}")
    print(format_table(
        ["config", "max_batch", "reqs", "req/s", "p50_ms", "p99_ms",
         "batch_mean", "batch_max"], rows,
    ))
    print(f"batched vs per-request throughput: {speedup:.2f}x")

    payload = {
        **bench_header,
        "smoke": SMOKE,
        "concurrency": N_CLIENTS,
        "requests_per_client": N_PER_CLIENT,
        "model": "C8->8 k3x3 pad1, images 1x8x12x12 float32",
        "configs": configs,
        "batched_speedup": speedup,
        "digest_checked": True,
    }
    out = results_dir / "BENCH_serve_load.json"
    out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {out}")

    # The batcher must actually have coalesced, in every mode -- a
    # batched run whose batches are all singletons measured nothing.
    assert configs["per_request"]["batch_size"]["max"] == 1
    assert configs["batched"]["batch_size"]["max"] > 1, (
        "batched configuration never coalesced a batch"
    )

    # Throughput gate (E22 convention: JSON first, then gate; skips are
    # visible, and REPRO_REQUIRE_SERVE_GATE turns them into failures).
    if SMOKE:
        msg = "smoke mode: JSON written, throughput gate needs the full run"
        if REQUIRE_GATE:
            pytest.fail(f"REPRO_REQUIRE_SERVE_GATE set but {msg}")
        pytest.skip(msg)
    if cores < 2 and not REQUIRE_GATE:
        pytest.skip(
            f"host has {cores} core(s): JSON written with honest numbers; "
            "the batched-speedup gate is asserted on multi-core hosts "
            "(set REPRO_REQUIRE_SERVE_GATE to force it)"
        )
    assert speedup >= GATE_MIN, (
        f"batched dispatch only {speedup:.2f}x per-request throughput "
        f"at concurrency {N_CLIENTS} (gate: {GATE_MIN}x)"
    )
