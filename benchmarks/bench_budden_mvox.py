"""E8 -- throughput comparison against Budden et al. (paper Sec. 5.1).

The paper compares against Budden et al.'s reported numbers on their
sample network (3 layers, 32 channels each, 4x4 kernels):

* Budden et al. on an 18-core Xeon E7-8890: 10.9 MVox/s,
* MKL-DNN direct on the same CPU: > 12 MVox/s,
* the paper's implementation on KNL: ~100 MVox/s (9x), i.e. ~3x better
  hardware utilization once the ~3x FLOPs gap between the chips is
  normalized out.

We model our implementation on both chips; the 4x4-kernel support
itself is the capability no other library has.
"""

from __future__ import annotations

from conftest import format_table, write_csv
from repro.baselines.direct import DirectConvBaseline
from repro.core.autotune import autotune_layer
from repro.core.fmr import FmrSpec
from repro.machine.cost import WinogradCostModel
from repro.machine.spec import KNL_7210, XEON_E7_8890
from repro.nets.layers import BUDDEN_NET

#: F(3x3, 4x4) -- an arbitrary-kernel tile choice only our method supports.
FMR = FmrSpec.uniform(2, 3, 4)


def _net_mvox_per_s(machine, wisdom) -> float:
    total_s = 0.0
    total_vox = 0
    for layer in BUDDEN_NET:
        tune = autotune_layer(
            layer, FMR, machine, wisdom=wisdom,
            threads_per_core_options=(1, 2),
        )
        model = WinogradCostModel(
            machine, threads_per_core=tune.threads_per_core
        )
        total_s += model.layer_cost(layer, FMR, tune.blocking).seconds
        total_vox += layer.output_voxels
    return total_vox / total_s / 1e6


def test_budden_comparison(benchmark, results_dir, shared_wisdom):
    """[model] MVox/s on the Budden sample network."""

    def build():
        ours_knl = _net_mvox_per_s(KNL_7210, shared_wisdom)
        # MKL-DNN direct on the Haswell (the paper's >12 MVox/s point).
        direct = DirectConvBaseline(
            "MKL-DNN direct", machine=XEON_E7_8890, efficiency=0.70
        )
        direct_s = sum(direct.predicted_seconds(l) for l in BUDDEN_NET)
        direct_mvox = sum(l.output_voxels for l in BUDDEN_NET) / direct_s / 1e6
        return [
            ["Budden et al. (paper-reported)", "E7-8890", "10.9"],
            ["MKL-DNN direct [model]", "E7-8890", f"{direct_mvox:.1f}"],
            ["ours F(3^2,4^2) [model]", "KNL 7210", f"{ours_knl:.1f}"],
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["implementation", "CPU", "MVox/s"]
    print("\nBudden et al. comparison [model] (paper: ours 9x Budden, ~3x")
    print("normalized utilization; absolute MVox/s are not comparable --")
    print("Budden et al. do not publish their image extent, see EXPERIMENTS.md)")
    print(format_table(headers, rows))
    write_csv(results_dir / "budden_mvox.csv", headers, rows)

    ours = float(rows[2][2])
    budden = float(rows[0][2])
    direct_haswell = float(rows[1][2])
    # The reproducible claims are relative:
    # 1. Ours on KNL clears Budden's reported throughput by far more than
    #    the paper's 9x (their network extent is unknown; ours is memory
    #    bound on the guessed 256^2 extent, so this is a weak lower bound).
    assert ours > 9 * budden
    # 2. Ours beats the direct convolution even on this unusual 4x4-kernel
    #    workload, on FLOPs-normalized terms: utilization ratio vs the
    #    Haswell direct model exceeds the ~3x peak-FLOPs gap.
    flops_gap = KNL_7210.peak_flops / XEON_E7_8890.peak_flops
    assert ours / direct_haswell > flops_gap
