"""Fig. 6 -- JIT batched matrix-multiply speedups over MKL/LIBXSMM (E2).

The simulated table sweeps the paper's V-hat shapes (multiples of S=16,
at most 128^2 elements); our kernel picks its best register blocking per
shape, exactly as the paper's protocol records "the fastest one".

Real wall-clock benchmarks compare the executable engines (blocked GEMM,
the JIT kernel cache) against ``numpy.matmul`` on the stage-2 problem
shape, validating that the blocked loop structure adds no asymptotic
overhead in the real implementation.
"""

from __future__ import annotations

import statistics

import numpy as np
import pytest

from conftest import format_table, write_csv
from repro.baselines.gemm_libs import FIG6_SHAPES, speedup_table
from repro.core.blocking import BlockingConfig
from repro.core.gemm import blocked_gemm
from repro.core.jit_gemm import JitGemm


def test_fig6_simulated_speedups(benchmark, results_dir):
    """[model] Speedup of our JIT GEMM over the MKL/LIBXSMM models."""
    rows_raw = benchmark.pedantic(
        lambda: speedup_table(FIG6_SHAPES), rounds=1, iterations=1
    )
    headers = [
        "v_shape", "ours_gflops", "ours_n_blk",
        "mkl_gflops", "libxsmm_gflops", "speedup_vs_mkl", "speedup_vs_libxsmm",
    ]
    rows = [
        [
            r["v_shape"], f"{r['ours_gflops']:.1f}", r["ours_n_blk"],
            f"{r['mkl_gflops']:.1f}", f"{r['libxsmm_gflops']:.1f}",
            f"{r['speedup_vs_mkl']:.2f}", f"{r['speedup_vs_libxsmm']:.2f}",
        ]
        for r in rows_raw
    ]
    print("\nFig. 6 [model] -- JIT batched GEMM speedups (per core)")
    print(format_table(headers, rows))
    write_csv(results_dir / "fig6_gemm.csv", headers, rows)

    mkl = [r["speedup_vs_mkl"] for r in rows_raw]
    xsmm = [r["speedup_vs_libxsmm"] for r in rows_raw]
    # Paper: averages of 1.6x (MKL) and 1.7x (LIBXSMM); larger wins on
    # smaller V-hat.  Validate the band and the trend.
    assert 1.2 < statistics.mean(mkl) < 2.0
    assert 1.4 < statistics.mean(xsmm) < 2.4
    assert max(mkl) == mkl[0] or max(mkl) == mkl[2]  # a smallest shape wins
    assert min(mkl) == mkl[-1]  # 128x128 benefits least
    assert all(s > 1.0 for s in mkl + xsmm)


# ----------------------------------------------------------------------
# Real execution benchmarks.
# ----------------------------------------------------------------------
BLK = BlockingConfig(n_blk=30, c_blk=64, cprime_blk=64)


@pytest.fixture(scope="module")
def stage2_problem():
    rng = np.random.default_rng(0)
    t, nb, c, cp = 16, 720, 64, 64
    u = rng.normal(size=(t, nb, c)).astype(np.float32)
    v = rng.normal(size=(t, c, cp)).astype(np.float32)
    return u, v


def test_real_numpy_matmul(benchmark, stage2_problem):
    """[real] Baseline: one fused numpy batched matmul."""
    u, v = stage2_problem
    benchmark(np.matmul, u, v)


def test_real_blocked_gemm(benchmark, stage2_problem):
    """[real] The paper's blocked loop nest (Fig. 3) in numpy."""
    u, v = stage2_problem
    x = benchmark(blocked_gemm, u, v, BLK)
    np.testing.assert_allclose(x, np.matmul(u, v), rtol=1e-4, atol=1e-5)


def test_real_jit_gemm_cache(benchmark, stage2_problem):
    """[real] The JIT kernel-cache path (compile once, reuse)."""
    u, v = stage2_problem
    jit = JitGemm()
    jit.batched(u, v, BLK)  # warm the kernel cache (instantiation time)
    x = benchmark(jit.batched, u, v, BLK)
    assert jit.compile_count <= 2
    np.testing.assert_allclose(x, np.matmul(u, v), rtol=1e-4, atol=1e-5)
