"""E6 -- transformation codelet op-count ablation (paper Fig. 2).

For every F(m, r) in the evaluation, compares the arithmetic
instruction count and dependency-chain latency of the generated
codelets at three optimization levels: dense (one FMA per matrix
entry -- the paper's Fig. 2 baseline counting), sparsity elision, and
sparsity + even/odd pairing.
"""

from __future__ import annotations

from conftest import format_table, write_csv
from repro.core.codelets import codelet_statistics, generate_codelet
from repro.core.transforms import winograd_1d

CASES = [(2, 3), (4, 3), (6, 3), (8, 3), (3, 4)]  # (m, r); 3x4 = Budden kernel


def test_codelet_op_reduction(benchmark, results_dir):
    """[model] Op counts for the B-matrix codelets of each F(m, r)."""

    def build():
        rows = []
        for m, r in CASES:
            t = winograd_1d(m, r)
            for label, mat in (("B", t.b), ("G", t.g), ("A", t.a)):
                stats = codelet_statistics(mat, label=f"{label} F({m},{r})")
                rows.append(
                    [
                        f"F({m},{r})",
                        label,
                        stats.dense_ops,
                        stats.sparse_only_ops,
                        stats.optimized_ops,
                        stats.pairs_found,
                        stats.sparse_only_latency,
                        stats.optimized_latency,
                    ]
                )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = [
        "F(m,r)", "matrix", "dense_ops", "sparse_ops", "opt_ops",
        "pairs", "sparse_lat", "opt_lat",
    ]
    print("\nCodelet ablation [model] -- ops per S-wide transform (Fig. 2)")
    print(format_table(headers, rows))
    write_csv(results_dir / "codelet_ablation.csv", headers, rows)

    for r in rows:
        dense, sparse, opt = r[2], r[3], r[4]
        assert opt <= sparse <= dense
    # The even/odd optimization fires on every B matrix with alpha >= 4.
    b_rows = [r for r in rows if r[1] == "B" and r[0] != "F(3,4)"]
    assert all(r[5] >= 1 for r in b_rows)
    # Latency never regresses (the second half of Fig. 2's claim).
    assert all(r[7] <= r[6] for r in rows)


def test_real_codelet_vs_dense_matmul(benchmark):
    """[real] The generated codelet applied to a batch of tiles."""
    import numpy as np

    t = winograd_1d(6, 3)
    cod = generate_codelet(t.b)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(4096, t.alpha)).astype(np.float32)
    y = benchmark(cod.fn, x)
    b = np.array([[float(v) for v in row] for row in t.b], dtype=np.float32)
    np.testing.assert_allclose(y, x @ b.T, rtol=1e-4, atol=1e-5)
