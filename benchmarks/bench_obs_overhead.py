"""E23 (extension) -- observability overhead on the warm serving path.

The obs layer (span tracer + metrics registry, DESIGN.md E23) sits on
every request of the serving engine, so its cost must be demonstrably
negligible against the warm-path latencies ``bench_serving_throughput``
tracks.  This bench measures warm per-request latency on one scaled
VGG layer in three configurations:

* **baseline** -- tracer disabled (``Tracer(enabled=False)``: spans are
  one attribute check), default metrics;
* **traced** -- the default engine configuration (tracer + metrics on);
* **bounded** -- tracer on with a tiny ``max_spans`` ring, showing that
  retention pressure (constant drop + re-append) does not change the
  cost picture.

Results land in ``results/BENCH_obs.json``.  Acceptance gate: enabling
tracing+metrics costs < 50% of warm fused-path latency (in practice it
is a few percent; the loose gate keeps a noisy shared-CPU container
from flaking the suite).

Set ``REPRO_BENCH_SMOKE=1`` for a quick CI smoke run (fewer repeats,
gate relaxed to 2x).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from conftest import format_table
from repro.core.engine import ConvolutionEngine
from repro.nets.layers import TABLE2_LAYERS
from repro.obs.tracer import Tracer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _warm_latency(engine, images, kernels, padding, iters):
    """Median warm per-request seconds (plan cache already populated)."""
    engine.run(images, kernels, padding=padding)  # compile + cache
    samples = []
    for _ in range(iters):
        t0 = time.perf_counter()
        engine.run(images, kernels, padding=padding)
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return samples[len(samples) // 2]


def test_obs_overhead(results_dir, bench_header):
    """[real] tracer+metrics cost on the warm fused path."""
    iters = 10 if SMOKE else 40
    repeats = 2 if SMOKE else 3
    gate = 2.0 if SMOKE else 1.5

    layer = TABLE2_LAYERS[2].scaled(batch=4, channels_divisor=4, image_divisor=2)
    rng = np.random.default_rng(0)
    images = rng.standard_normal(
        (layer.batch, layer.c_in) + layer.image
    ).astype(np.float32)
    kernels = (
        rng.standard_normal((layer.c_in, layer.c_out) + layer.kernel) * 0.05
    ).astype(np.float32)

    configs = {
        "baseline": lambda: ConvolutionEngine(tracer=Tracer(enabled=False)),
        "traced": lambda: ConvolutionEngine(),
        "bounded": lambda: ConvolutionEngine(tracer=Tracer(max_spans=16)),
    }
    best: dict[str, float] = {}
    for name, make in configs.items():
        best[name] = float("inf")
        for _ in range(repeats):
            with make() as engine:
                lat = _warm_latency(
                    engine, images, kernels, layer.padding, iters
                )
            best[name] = min(best[name], lat)

    overhead = best["traced"] / best["baseline"]
    rows = [
        [name, f"{lat * 1e3:.3f}", f"{lat / best['baseline']:.2f}x"]
        for name, lat in best.items()
    ]
    print()
    print(f"observability overhead, warm fused path ({layer.label} scaled):")
    print(format_table(["config", "warm_ms[real]", "vs_baseline"], rows))

    payload = {
        **bench_header,
        "layer": layer.label,
        "iters": iters,
        "smoke": SMOKE,
        "warm_seconds": best,
        "traced_over_baseline": overhead,
    }
    with open(results_dir / "BENCH_obs.json", "w") as f:
        json.dump(payload, f, indent=2)

    assert overhead < gate, (
        f"tracing+metrics overhead {overhead:.2f}x exceeds the {gate}x gate"
    )
