"""Nested-Winograd large-kernel benchmark (E28) [real].

Sweeps the large-kernel showcase layers (r in {5, 7, 9, 11}; see
``repro.nets.layers.LARGE_KERNEL_LAYERS``) through a warm engine pinned
to ``algorithm="nested"`` and compares against the *best* prepared
non-Winograd baseline (FFT, direct, im2col) per layer.  One-level fp32
Winograd is excluded by construction: past r = 5 its error blows through
the 1e-2 training threshold (Table 3; ``bench_table3_accuracy.py``
measures the nested side of that story), so the portfolio never offers
it and the honest comparator is the baseline portfolio.

The nested decomposition (``repro.core.nested``) reduces the r > 3
layer to ONE channel-stacked r = 3 Winograd problem, so it inherits the
engine's whole warm path -- plan cache, kernel-transform memoization,
workspace arena -- and the engine's backends unchanged.

Results land in ``results/BENCH_nested.json`` with the shared
provenance header, per-layer timings, the portfolio's probed decision
for the r >= 7 layers, and the edge-neon vs manycore-knl prediction
divergence (both sides oracle-validated).

Gates:

* nested clears >= 1.2x over the best non-Winograd baseline on at
  least two large-r layers (one in smoke mode) -- losing layers are
  recorded honestly (r = 11 belongs to the FFT on this host);
* the ``auto`` portfolio picks ``nested`` for at least one r >= 7
  layer under the default (manycore-knl) profile;
* the edge-neon and manycore-knl profiles disagree on at least one
  prediction-only decision over the scaled Table-2 + large-kernel
  sweep, and both disagreeing choices are validated against the
  float64 direct-convolution oracle.

Set ``REPRO_BENCH_SMOKE=1`` for a quick CI run (three layers, fewer
repeats).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.engine import ConvolutionEngine
from repro.machine.profiles import get_profile
from repro.nets.layers import LARGE_KERNEL_LAYERS, TABLE2_LAYERS, ConvLayerSpec
from repro.nets.reference import reference_convolution
from repro.util.errors import element_errors
from repro.util.reporting import format_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

REPEATS = 5 if SMOKE else 12
WARMUP = 2 if SMOKE else 3

#: Non-Winograd comparators; the per-layer reference is the *best* one.
BASELINES = ("fft", "direct", "im2col")

SMOKE_LAYERS = tuple(
    l for l in LARGE_KERNEL_LAYERS
    if l.label in ("Stem-5x5/a", "Stem-7x7", "SRCNN-9x9")
)
LAYERS = SMOKE_LAYERS if SMOKE else LARGE_KERNEL_LAYERS


def _layer_arrays(layer: ConvLayerSpec, rng) -> tuple[np.ndarray, np.ndarray]:
    images = rng.standard_normal(
        (layer.batch, layer.c_in) + layer.image
    ).astype(np.float32)
    kernels = (
        rng.standard_normal((layer.c_in, layer.c_out) + layer.kernel) * 0.1
    ).astype(np.float32)
    return images, kernels


def _interleaved_warm_seconds(
    engine, images, kernels, padding, algorithms, repeats=REPEATS
) -> dict[str, float]:
    """Best-of-N warm latency per forced algorithm, repeats interleaved
    so clock drift and background load hit every algorithm comparably."""
    for algo in algorithms:
        for _ in range(WARMUP):
            engine.run(images, kernels, padding=padding, algorithm=algo)
    best = {algo: float("inf") for algo in algorithms}
    for _ in range(repeats):
        for algo in algorithms:
            t0 = time.perf_counter()
            engine.run(images, kernels, padding=padding, algorithm=algo)
            best[algo] = min(best[algo], time.perf_counter() - t0)
    return best


def test_nested_large_kernel(results_dir, bench_header):
    rng = np.random.default_rng(11)
    engine = ConvolutionEngine()  # default profile: manycore-knl
    auto = ConvolutionEngine(algorithm="auto")

    # ------------------------------------------------------------------
    # Section 1: nested vs the best non-Winograd baseline, warm.
    # ------------------------------------------------------------------
    records = []
    rows = []
    for layer in LAYERS:
        images, kernels = _layer_arrays(layer, rng)
        times = _interleaved_warm_seconds(
            engine, images, kernels, layer.padding, ("nested",) + BASELINES
        )
        best_baseline = min(BASELINES, key=times.__getitem__)
        speedup = times[best_baseline] / times["nested"]
        record = {
            "layer": layer.label,
            "r": max(layer.kernel),
            "batch": layer.batch,
            "channels": [layer.c_in, layer.c_out],
            "image": list(layer.image),
            "seconds": {a: times[a] for a in ("nested",) + BASELINES},
            "best_baseline": best_baseline,
            "nested_speedup": speedup,
        }
        # The probed portfolio decision for the r >= 7 layers (the
        # regime one-level Winograd is numerically barred from).
        if max(layer.kernel) >= 7:
            auto.run(images, kernels, padding=layer.padding)
            record["auto_decision"] = auto.algorithm_decisions()[-1]["algorithm"]
            record["auto_source"] = auto.algorithm_decisions()[-1]["source"]
        records.append(record)
        rows.append([
            layer.label, f"r={max(layer.kernel)}",
            f"{times['nested'] * 1e3:.3f}",
            f"{times[best_baseline] * 1e3:.3f} ({best_baseline})",
            f"{speedup:.2f}x",
            record.get("auto_decision", "-"),
        ])

    print(f"\nNested Winograd vs best baseline [real], "
          f"host cores: {os.cpu_count()}")
    print(format_table(
        ["layer", "regime", "nested_ms", "best_baseline_ms", "speedup", "auto"],
        rows,
    ))

    # ------------------------------------------------------------------
    # Section 2: machine-profile divergence, prediction-only, both
    # sides checked against the float64 direct-convolution oracle.
    # ------------------------------------------------------------------
    from repro.core.portfolio import PortfolioPlanner
    from repro.util.wisdom import Wisdom

    knl = get_profile("manycore-knl")
    neon = get_profile("edge-neon")
    planners = {
        "manycore-knl": PortfolioPlanner(knl, Wisdom(), probe=False),
        "edge-neon": PortfolioPlanner(neon, Wisdom(), probe=False),
    }
    sweep = [
        l.scaled(batch=1, channels_divisor=4, image_divisor=4)
        for l in TABLE2_LAYERS
    ] + list(LARGE_KERNEL_LAYERS)
    divergence = []
    for layer in sweep:
        chosen = {
            name: p.decide(layer).algorithm for name, p in planners.items()
        }
        if len(set(chosen.values())) > 1:
            divergence.append({"layer": layer.label, **chosen})

    # Oracle-validate both profiles' choices on the first divergent
    # layers (every further one picks from the same algorithm set).
    n_validate = 1 if SMOKE else 2
    validations = []
    for entry in divergence[:n_validate]:
        layer = next(
            l for l in sweep if l.label == entry["layer"]
        )
        images, kernels = _layer_arrays(layer, rng)
        oracle = reference_convolution(images, kernels, padding=layer.padding)
        for profile_name in planners:
            algo = entry[profile_name]
            out = engine.run(
                images, kernels, padding=layer.padding, algorithm=algo
            )
            err = element_errors(out, oracle).max_error
            validations.append({
                "layer": layer.label, "profile": profile_name,
                "algorithm": algo, "max_error": err,
            })
            assert err < 1e-2, (layer.label, profile_name, algo, err)

    print(f"\nProfile divergence (prediction-only): "
          f"{len(divergence)} differing decisions")
    for v in validations:
        print(f"  {v['layer']:16s} {v['profile']:14s} -> {v['algorithm']:8s} "
              f"oracle max err {v['max_error']:.2e}")

    # ------------------------------------------------------------------
    # Payload + gates.
    # ------------------------------------------------------------------
    payload = {
        **bench_header,
        "smoke": SMOKE,
        "repeats": REPEATS,
        "records": records,
        "profile_divergence": divergence,
        "profile_divergence_validations": validations,
    }
    out = results_dir / "BENCH_nested.json"
    out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {out}")

    # Gate 1: nested pays off on the large-kernel sweep.
    wins = [r for r in records if r["nested_speedup"] >= 1.2]
    need = 1 if SMOKE else 2
    assert len(wins) >= need, (
        f"expected >= {need} layers with nested >= 1.2x over the best "
        f"baseline, got "
        f"{[(r['layer'], round(r['nested_speedup'], 2)) for r in records]}"
    )
    # Gate 2: the portfolio actually picks nested somewhere in the
    # r >= 7 regime under the default profile.
    nested_picks = [
        r for r in records
        if r.get("auto_decision") == "nested" and r["r"] >= 7
    ]
    assert nested_picks, (
        f"auto never chose nested for an r >= 7 layer: "
        f"{[(r['layer'], r.get('auto_decision')) for r in records]}"
    )
    # Gate 3: the machine-profile registry changes decisions.
    assert divergence, "edge-neon and manycore-knl agreed on every layer"
    assert len(validations) >= 2  # both profiles oracle-validated
