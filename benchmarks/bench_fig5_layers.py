"""Fig. 5 -- convolution layer runtimes across implementations (E1).

Regenerates the paper's central figure: for every Table-2 layer, the
modelled KNL runtime of our implementation (several F(m, r), with and
without kernel transforms) against FALCON, MKL-DNN (Winograd + direct),
LIBXSMM, Zlateski-direct and the cuDNN GPU columns.

Also wall-clock-benchmarks the *real* numpy pipeline on scaled
surrogates of one layer per network, against direct and im2col
execution, so the algorithmic win (fewer multiplications) is visible in
real time measurements as well.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import format_table, write_csv
from repro.baselines import (
    BaselineCrash,
    CudnnFft3D,
    CudnnImplicitGemm,
    CudnnWinograd2D,
    OursWinograd,
    UnsupportedLayer,
    falcon,
    libxsmm_winograd,
    mkldnn_direct,
    mkldnn_winograd,
    zlateski_direct,
)
from repro.core.convolution import WinogradPlan
from repro.core.fmr import FmrSpec
from repro.nets.layers import TABLE2_LAYERS, get_layer
from repro.nets.reference import direct_convolution
from repro.baselines.im2col import im2col_convolution

#: Tile sizes benchmarked for our implementation, per dimensionality
#: (the paper's Fig. 5 sweeps these).
OUR_2D_TILES = [2, 4, 6]
OUR_3D_TILES = [2, 4]


def _cpu_implementations(layer, wisdom):
    impls = []
    tiles = OUR_2D_TILES if layer.ndim == 2 else OUR_3D_TILES
    for m in tiles:
        impls.append(OursWinograd(m=m, wisdom=wisdom))
    impls.append(OursWinograd(m=tiles[-1], wisdom=wisdom, inference_only=True))
    if layer.ndim == 2:
        impls += [falcon(), mkldnn_winograd(), libxsmm_winograd()]
    impls += [mkldnn_direct(), zlateski_direct()]
    return impls


def _gpu_implementations(layer):
    if layer.ndim == 2:
        return [CudnnWinograd2D()]
    return [CudnnImplicitGemm(), CudnnFft3D()]


def test_fig5_simulated_table(benchmark, results_dir, shared_wisdom):
    """[model] The full Fig. 5 matrix on the simulated KNL + Titan X."""

    def build():
        headers = ["layer", "impl", "time_ms", "note"]
        rows = []
        for layer in TABLE2_LAYERS:
            for impl in _cpu_implementations(layer, shared_wisdom) + _gpu_implementations(layer):
                try:
                    ms = impl.predicted_seconds(layer) * 1e3
                    rows.append([layer.label, impl.name, f"{ms:.2f}", ""])
                except BaselineCrash:
                    rows.append([layer.label, impl.name, "", "segfault"])
                except UnsupportedLayer:
                    continue
        return headers, rows

    headers, rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\nFig. 5 [model] -- layer runtimes (ms, simulated KNL / Titan X)")
    print(format_table(headers, rows))
    write_csv(results_dir / "fig5_layers.csv", headers, rows)

    # Shape assertions: the paper's headline comparisons.
    t = {(r[0], r[1]): float(r[2]) for r in rows if r[2]}
    ours_best = {
        layer.label: min(v for (l, n), v in t.items() if l == layer.label and n.startswith("ours"))
        for layer in TABLE2_LAYERS
    }
    # 1. Ours is the fastest CPU implementation on every layer.
    for (label, name), v in t.items():
        if name.startswith(("ours", "cuDNN")):
            continue
        assert v >= ours_best[label], (label, name)
    # 2. cuDNN 2D is faster (it has 2.5x the FLOPs) but by < 2.5x.
    for layer in TABLE2_LAYERS:
        if layer.ndim == 2:
            ratio = ours_best[layer.label] / t[(layer.label, "cuDNN wino")]
            assert 1.0 < ratio < 2.5, layer.label
    # 3. Ours beats both cuDNN 3D algorithms on every 3D layer.
    for layer in TABLE2_LAYERS:
        if layer.ndim == 3:
            assert t[(layer.label, "cuDNN gemm")] > 2 * ours_best[layer.label]
            assert t[(layer.label, "cuDNN FFT")] > 2 * ours_best[layer.label]


# ----------------------------------------------------------------------
# Real wall-clock benchmarks on scaled surrogates.
# ----------------------------------------------------------------------
SURROGATES = {
    "VGG-3.2": get_layer("VGG", "3.2").scaled(batch=1, channels_divisor=8, image_divisor=2),
    "FusionNet-3.2": get_layer("FusionNet", "3.2").scaled(channels_divisor=8, image_divisor=4),
    "C3D-C3b": get_layer("C3D", "C3b").scaled(batch=1, channels_divisor=8, image_divisor=2),
}


def _arrays(layer, seed=0):
    rng = np.random.default_rng(seed)
    img = rng.normal(size=(layer.batch, layer.c_in) + layer.image).astype(np.float32)
    ker = rng.normal(size=(layer.c_in, layer.c_out) + layer.kernel).astype(np.float32)
    return img, ker


@pytest.mark.parametrize("name", sorted(SURROGATES))
def test_real_winograd_execution(benchmark, name):
    """[real] Our pipeline (planned, FX mode) on a scaled layer."""
    layer = SURROGATES[name]
    img, ker = _arrays(layer)
    m = 4 if layer.ndim == 2 else 2
    plan = WinogradPlan(
        spec=FmrSpec.uniform(layer.ndim, m, 3),
        input_shape=img.shape,
        c_out=layer.c_out,
        padding=layer.padding,
        dtype=np.float32,
    )
    w = plan.transform_kernels(ker)
    out = benchmark(plan.execute, img, w)
    assert out.shape == (layer.batch, layer.c_out) + layer.output_image


@pytest.mark.parametrize("name", sorted(SURROGATES))
def test_real_direct_execution(benchmark, name):
    """[real] Direct convolution on the same surrogate (comparison)."""
    layer = SURROGATES[name]
    img, ker = _arrays(layer)
    out = benchmark(direct_convolution, img, ker, layer.padding)
    assert out.shape == (layer.batch, layer.c_out) + layer.output_image


def test_real_im2col_execution(benchmark):
    """[real] im2col+GEMM on the 2D surrogate."""
    layer = SURROGATES["VGG-3.2"]
    img, ker = _arrays(layer)
    out = benchmark(im2col_convolution, img, ker, layer.padding)
    assert out.shape == (layer.batch, layer.c_out) + layer.output_image
