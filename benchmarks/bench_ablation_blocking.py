"""E5 -- Eqn. 11 compute-to-memory analysis and blocking ablation.

Reproduces Sec. 4.3.2's reasoning: the 128x128 blocking has ratio 85.3
(above the KNL capability of 45 -> compute bound), 64x64 has 42.7
(below -> memory bound), and the autotuner therefore prefers large
C_blk/C'_blk whenever the channels allow it.
"""

from __future__ import annotations

from conftest import format_table, write_csv
from repro.core.blocking import BlockingConfig, candidate_blockings
from repro.core.fmr import FmrSpec
from repro.machine.cost import WinogradCostModel
from repro.machine.spec import KNL_7210
from repro.nets.layers import get_layer


def test_eqn11_ratio_table(benchmark, results_dir):
    """[model] Compute-to-memory ratio across blocking choices."""

    def build():
        rows = []
        for cb, cpb in [(32, 32), (64, 64), (64, 128), (128, 64), (128, 128)]:
            cfg = BlockingConfig(n_blk=28, c_blk=cb, cprime_blk=cpb)
            rows.append(
                [
                    f"{cb}x{cpb}",
                    f"{cfg.compute_to_memory_ratio(0):.2f}",
                    f"{cfg.compute_to_memory_ratio(1):.2f}",
                    cfg.v_bytes() // 1024,
                    "compute" if cfg.compute_to_memory_ratio(1)
                    > KNL_7210.compute_to_memory_capability else "memory",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["C_blk x C'_blk", "ratio_b0", "ratio_b1", "V_KB", "bound"]
    print("\nEqn. 11 [model] -- compute-to-memory ratio (KNL capability: "
          f"{KNL_7210.compute_to_memory_capability:.1f})")
    print(format_table(headers, rows))
    write_csv(results_dir / "eqn11_blocking.csv", headers, rows)

    table = {r[0]: r for r in rows}
    assert table["128x128"][4] == "compute"
    assert table["64x64"][4] == "memory"
    assert abs(float(table["128x128"][2]) - 85.33) < 0.01
    assert abs(float(table["64x64"][2]) - 42.67) < 0.01


def test_blocking_ablation_on_layer(benchmark, results_dir):
    """[model] End-to-end effect of the blocking choice on VGG 4.2."""
    layer = get_layer("VGG", "4.2")
    fmr = FmrSpec.uniform(2, 4, 3)
    model = WinogradCostModel(KNL_7210, threads_per_core=2)

    def build():
        rows = []
        for cfg in [
            BlockingConfig(n_blk=28, c_blk=32, cprime_blk=32),
            BlockingConfig(n_blk=28, c_blk=64, cprime_blk=64),
            BlockingConfig(n_blk=28, c_blk=128, cprime_blk=128),
            BlockingConfig(n_blk=6, c_blk=128, cprime_blk=128),
            BlockingConfig(n_blk=14, c_blk=128, cprime_blk=128),
        ]:
            cost = model.layer_cost(layer, fmr, cfg)
            gemm = cost.stage("gemm")
            rows.append(
                [
                    cfg.n_blk,
                    f"{cfg.c_blk}x{cfg.cprime_blk}",
                    f"{gemm.compute_s * 1e3:.2f}",
                    f"{gemm.memory_s * 1e3:.2f}",
                    f"{cost.seconds * 1e3:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["n_blk", "C_blk x C'_blk", "gemm_comp_ms", "gemm_mem_ms", "total_ms"]
    print("\nBlocking ablation [model] -- VGG 4.2, F(4^2,3^2)")
    print(format_table(headers, rows))
    write_csv(results_dir / "blocking_ablation.csv", headers, rows)

    t = {(r[0], r[1]): float(r[4]) for r in rows}
    # 128x128 beats 32x32 end to end; n_blk=28 beats n_blk=6.
    assert t[(28, "128x128")] < t[(28, "32x32")]
    assert t[(28, "128x128")] < t[(6, "128x128")]


def test_candidate_enumeration(benchmark):
    """[model] The search space for a 512-channel layer is non-trivial
    but bounded (what the wisdom file amortizes)."""
    cands = benchmark.pedantic(
        lambda: candidate_blockings(512, 512), rounds=1, iterations=1
    )
    assert 50 < len(cands) < 2000
