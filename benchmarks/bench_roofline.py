"""E13 (extension) -- roofline table for the competing algorithms.

Places direct, Winograd, im2col and FFT convolution on the KNL roofline
for representative Table-2 layers: FLOPs, main-memory traffic,
arithmetic intensity, the binding resource, and the attainable time.
Makes the paper's FLOPs-vs-intensity trade quantitative.
"""

from __future__ import annotations

from conftest import format_table, write_csv
from repro.core.fmr import FmrSpec
from repro.machine.roofline import layer_roofline
from repro.machine.spec import KNL_7210
from repro.nets.layers import get_layer

LAYERS = [("VGG", "3.2"), ("VGG", "5.2"), ("FusionNet", "2.2"), ("C3D", "C3b")]


def test_roofline_table(benchmark, results_dir):
    """[model] Roofline positions of all algorithms per layer."""

    def build():
        rows = []
        for net, name in LAYERS:
            layer = get_layer(net, name)
            fmr = FmrSpec.uniform(layer.ndim, 4, 3)
            for p in layer_roofline(layer, fmr, KNL_7210):
                rows.append(
                    [
                        layer.label,
                        p.algorithm,
                        f"{p.flops / 1e9:.1f}",
                        f"{p.bytes_moved / 1e6:.1f}",
                        f"{p.arithmetic_intensity:.1f}",
                        p.bound(KNL_7210),
                        f"{p.attainable_seconds(KNL_7210) * 1e3:.2f}",
                    ]
                )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["layer", "algorithm", "GFLOP", "MB moved", "AI (F/B)",
               "bound", "attainable_ms"]
    print("\nRoofline table [model] -- KNL ridge point "
          f"{KNL_7210.peak_flops / KNL_7210.mem_bandwidth:.1f} FLOP/byte")
    print(format_table(headers, rows))
    write_csv(results_dir / "roofline.csv", headers, rows)

    by = {(r[0], r[1].split()[0]): r for r in rows}
    for net, name in LAYERS:
        label = get_layer(net, name).label
        # Winograd attains the best time on every one of these layers.
        assert float(by[(label, "winograd")][6]) <= float(by[(label, "direct")][6])
        # ... with fewer FLOPs ...
        assert float(by[(label, "winograd")][2]) < float(by[(label, "direct")][2])
        # ... but lower arithmetic intensity (the trade).
        assert float(by[(label, "winograd")][4]) < float(by[(label, "direct")][4])
