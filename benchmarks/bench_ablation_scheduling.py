"""E7 -- static scheduling and barrier ablation (paper Sec. 4.5).

Three measurements:

* [model] load-balance of the recursive GCD schedule on the paper's
  three stage grids at 64/128/256 threads,
* [model] end-to-end cost of static vs dynamic scheduling and of the
  custom spin barrier vs an OpenMP-class barrier,
* [real]  wall-clock fork-join latency of our SpinBarrier-based pool vs
  ``threading.Barrier`` on this machine.
"""

from __future__ import annotations

import threading
import time

from conftest import format_table, write_csv
from repro.core.barrier import SpinBarrier
from repro.core.blocking import BlockingConfig
from repro.core.fmr import FmrSpec
from repro.core.parallel import ForkJoinPool
from repro.core.scheduling import (
    schedule_stats,
    stage1_grid,
    stage2_grid,
    stage3_grid,
    static_schedule,
)
from repro.machine.cost import WinogradCostModel
from repro.machine.spec import KNL_7210
from repro.nets.layers import get_layer

BLK = BlockingConfig(n_blk=28, c_blk=128, cprime_blk=128)


def test_schedule_balance_table(benchmark, results_dir):
    """[model] Imbalance of the three per-stage grids (VGG 3.2)."""
    layer = get_layer("VGG", "3.2")
    fmr = FmrSpec.uniform(2, 4, 3)
    counts = fmr.tile_counts(layer.output_image)
    n_tiles = counts[0] * counts[1]
    grids = {
        "stage1": stage1_grid(layer.batch, layer.c_in, counts),
        "stage2": stage2_grid(
            fmr.tile_elements, layer.c_out, n_tiles * layer.batch, BLK
        ),
        "stage3": stage3_grid(layer.batch, n_tiles, layer.c_out),
    }

    def build():
        rows = []
        for name, grid in grids.items():
            for threads in (64, 128, 256):
                stats = schedule_stats(static_schedule(grid, threads))
                rows.append(
                    [
                        name,
                        "x".join(map(str, grid)),
                        threads,
                        stats.max_tasks,
                        f"{stats.imbalance:.3f}",
                    ]
                )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["stage", "grid", "threads", "max_tasks", "imbalance"]
    print("\nStatic schedule balance [model] -- VGG 3.2, F(4^2,3^2)")
    print(format_table(headers, rows))
    write_csv(results_dir / "schedule_balance.csv", headers, rows)

    # Power-of-two thread counts divide these grids near-perfectly: the
    # paper's "nearly always evenly divide the work".
    assert all(float(r[4]) <= 1.15 for r in rows)


def test_scheduling_cost_ablation(benchmark, results_dir):
    """[model] Static + spin barrier vs dynamic + OpenMP-class barrier."""
    layer = get_layer("VGG", "3.2")
    fmr = FmrSpec.uniform(2, 4, 3)

    def build():
        rows = []
        for name, kwargs in (
            ("static+spin", {}),
            ("static+openmp", {"barrier_cycles": 20000}),
            ("dynamic", {"static_scheduling": False}),
        ):
            model = WinogradCostModel(KNL_7210, threads_per_core=2).with_features(
                **kwargs
            )
            cost = model.layer_cost(layer, fmr, BLK)
            rows.append(
                [
                    name,
                    f"{sum(s.sync_s for s in cost.stages) * 1e6:.1f}",
                    f"{cost.seconds * 1e3:.3f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["scheduling", "sync_us", "total_ms"]
    print("\nScheduling ablation [model] -- VGG 3.2, F(4^2,3^2)")
    print(format_table(headers, rows))
    write_csv(results_dir / "scheduling_ablation.csv", headers, rows)

    t = {r[0]: float(r[2]) for r in rows}
    assert t["static+spin"] <= t["static+openmp"]
    assert t["static+spin"] <= t["dynamic"]


def _forkjoin_roundtrips(pool, slices, n):
    for _ in range(n):
        pool.run(lambda tid, sl: None, slices)


def test_real_spin_forkjoin(benchmark):
    """[real] Empty fork-join latency through the SpinBarrier pool."""
    with ForkJoinPool(4) as pool:
        slices = static_schedule((4,), 4)
        benchmark.pedantic(
            _forkjoin_roundtrips, args=(pool, slices, 20), rounds=5, iterations=1
        )


def test_real_threading_barrier(benchmark):
    """[real] Comparable episode count with ``threading.Barrier``."""

    def run_episodes(n_threads=4, episodes=20):
        barrier = threading.Barrier(n_threads + 1)
        stop = [False]

        def worker():
            while True:
                barrier.wait()
                if stop[0]:
                    return
                barrier.wait()

        threads = [threading.Thread(target=worker, daemon=True) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for _ in range(episodes):
            barrier.wait()  # fork
            barrier.wait()  # join
        stop[0] = True
        barrier.wait()
        for t in threads:
            t.join(timeout=2)

    benchmark.pedantic(run_episodes, rounds=5, iterations=1)


def test_real_barrier_episode_rate():
    """[real] Sanity: the spin barrier sustains thousands of episodes/s."""
    b = SpinBarrier(2)
    done = []

    def worker():
        for _ in range(2000):
            b.wait()
        done.append(True)

    t = threading.Thread(target=worker)
    start = time.perf_counter()
    t.start()
    for _ in range(2000):
        b.wait()
    t.join(timeout=10)
    elapsed = time.perf_counter() - start
    assert done
    assert 2000 / elapsed > 1000  # >1k episodes per second


def test_idle_fraction_event_sim(benchmark, results_dir):
    """[model] Discrete-event replay: idle fraction per stage grid for
    VGG 3.2 under static vs dynamic scheduling (Sec. 4.5's 'no core
    idling' ideal)."""
    from repro.machine.execution_sim import compare_policies, uniform_duration

    layer = get_layer("VGG", "3.2")
    fmr = FmrSpec.uniform(2, 4, 3)
    counts = fmr.tile_counts(layer.output_image)
    n_tiles = counts[0] * counts[1]
    grids = {
        "stage1": stage1_grid(layer.batch, layer.c_in, counts),
        "stage2": stage2_grid(
            fmr.tile_elements, layer.c_out, n_tiles * layer.batch, BLK
        ),
        "stage3": stage3_grid(layer.batch, n_tiles, layer.c_out),
    }

    def build():
        rows = []
        for name, grid in grids.items():
            reports = compare_policies(
                grid, 128, uniform_duration(2000.0), chunk_tasks=8
            )
            for policy, rep in reports.items():
                rows.append(
                    [
                        name,
                        policy,
                        f"{rep.span_cycles / 1e6:.2f}",
                        f"{rep.idle_fraction * 100:.1f}%",
                        f"{rep.speedup:.1f}",
                    ]
                )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["stage", "policy", "span_Mcycles", "idle", "speedup"]
    print("\nEvent-level schedule replay [model] -- VGG 3.2, 128 threads")
    print(format_table(headers, rows))
    write_csv(results_dir / "schedule_event_sim.csv", headers, rows)

    by = {(r[0], r[1]): r for r in rows}
    for stage in grids:
        static_span = float(by[(stage, "static")][2])
        dynamic_span = float(by[(stage, "dynamic")][2])
        # Uniform tasks: the single barrier beats per-chunk dequeues.
        assert static_span <= dynamic_span
        # Near-ideal utilization under static scheduling.
        assert float(by[(stage, "static")][3].rstrip("%")) < 15.0
