"""E9 -- streaming stores and fused scatter ablation (paper Sec. 6).

The paper quantifies two store-path optimizations:

* non-temporal stores improved the transform stages "by an average of
  25%",
* scattering GEMM results inside the JIT primitive (with NT stores)
  "increased the overall speed by more than 20%".

This bench reproduces both numbers from the model, plus a cache-level
view from the cache simulator showing the pollution mechanism.
"""

from __future__ import annotations

import statistics

from conftest import format_table, write_csv
from repro.core.blocking import BlockingConfig
from repro.core.fmr import FmrSpec
from repro.machine.cache import CacheSim
from repro.machine.cost import WinogradCostModel
from repro.machine.spec import KNL_7210
from repro.nets.layers import TABLE2_LAYERS

BLK = BlockingConfig(n_blk=28, c_blk=64, cprime_blk=64)
LAYERS = [l for l in TABLE2_LAYERS if l.network in ("VGG", "C3D")]


def test_streaming_store_ablation(benchmark, results_dir):
    """[model] Transform-stage and overall gains from NT stores."""

    def build():
        base = WinogradCostModel(KNL_7210, threads_per_core=2)
        no_nt = base.with_features(streaming_stores=False)
        no_fused = base.with_features(fused_scatter=False)
        rows = []
        for layer in LAYERS:
            fmr = FmrSpec.uniform(layer.ndim, 4, 3)
            with_nt = base.layer_cost(layer, fmr, BLK)
            without_nt = no_nt.layer_cost(layer, fmr, BLK)
            unfused = no_fused.layer_cost(layer, fmr, BLK)
            tf_gain = (
                without_nt.stage("input_transform").seconds
                / with_nt.stage("input_transform").seconds
            )
            overall_gain = unfused.seconds / with_nt.seconds
            rows.append(
                [
                    layer.label,
                    f"{tf_gain:.2f}",
                    f"{overall_gain:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["layer", "transform_gain_nt", "overall_gain_fused_scatter"]
    print("\nStreaming-store ablation [model] (paper: ~1.25x transform, >1.2x overall)")
    print(format_table(headers, rows))
    write_csv(results_dir / "streaming_ablation.csv", headers, rows)

    tf_gains = [float(r[1]) for r in rows]
    overall = [float(r[2]) for r in rows]
    # Transform stages speed up meaningfully (paper: average ~25%).
    assert 1.1 < statistics.mean(tf_gains) < 2.2
    # Fused scatter helps overall (paper: >20% on their testbed).
    assert statistics.mean(overall) > 1.1


def test_real_cache_pollution_mechanism(benchmark):
    """[real cache-sim] NT stores keep the stationary V resident in L2
    while regular scatter stores evict it."""

    def run(streaming: bool) -> int:
        l2 = CacheSim(size_bytes=1024 * 1024, line_bytes=64, assoc=16)
        v_bytes = BLK.v_bytes()
        l2.access_range(0, v_bytes)  # V resident
        # Scatter a transformed-output block much larger than L2.
        out_base = 16 * 1024 * 1024
        for addr in range(out_base, out_base + 4 * 1024 * 1024, 64):
            if streaming:
                l2.stream_store(addr)
            else:
                l2.access(addr, write=True)
        # Count how much of V survived.
        return sum(1 for a in range(0, v_bytes, 64) if l2.contains(a))

    survived_nt = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    survived_regular = run(False)
    total_lines = BLK.v_bytes() // 64
    assert survived_nt == total_lines  # NT stores: zero pollution
    assert survived_regular < total_lines // 2  # regular stores evict V
