"""E22 (extension) -- wall-clock scaling of the parallel backends [real].

Every earlier performance number in this repo is either simulated
(``[model]``) or single-threaded.  This bench produces the first real
scaling curve: the sequential :class:`WinogradPlan` pipeline vs the
thread-parallel executor (faithful schedule, GIL-bound) vs the
process-parallel executor (same schedule, workers in separate processes
sharing the U/V/M buffers through named shared memory) across worker
counts, on a scaled Table-2 VGG layer.

What the curve is expected to show:

* threads track the sequential time (the GIL serializes the numpy
  call bodies except for brief BLAS releases), documenting exactly the
  gap the process backend exists to close;
* processes beat the sequential plan once >= 2 real cores are
  available, because stage arithmetic genuinely overlaps.

All timings are min-of-k (the only stable statistic on shared CPUs) and
every backend's output is checked against the direct-convolution oracle
before it is timed, so the curve is a curve of correct runs.

Results land in ``results/BENCH_parallel.json`` with the host core
count recorded.  Acceptance gate: the process backend beats the
sequential plan on >= 2 workers -- asserted only when the host actually
has >= 2 cores (a 1-core container cannot exhibit parallel speedup;
the JSON still records the honest numbers).

Set ``REPRO_BENCH_SMOKE=1`` for a quick CI smoke run (smaller layer,
fewer repeats, correctness checks only).

Setting ``REPRO_REQUIRE_PARALLEL_GATE`` makes the gate *mandatory*:
the 1-core and smoke-mode skips become failures, and the speedup floor
rises to ``REPRO_PARALLEL_GATE_MIN`` (default 2.0 when required).  The
CI ``differential`` job sets both on its multi-core runner, so "the
process backend actually scales" is an asserted invariant there, not a
skipped one.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from conftest import format_table
from repro.core.blocking import BlockingConfig
from repro.core.convolution import WinogradPlan
from repro.core.engine import default_parallel_blocking, parallel_simd_width
from repro.core.fmr import FmrSpec
from repro.core.parallel_convolution import ParallelWinogradExecutor
from repro.core.parallel_process import ProcessWinogradExecutor
from repro.nets.layers import TABLE2_LAYERS
from repro.nets.reference import direct_convolution

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
REQUIRE_GATE = os.environ.get("REPRO_REQUIRE_PARALLEL_GATE", "") not in ("", "0")
GATE_MIN = float(
    os.environ.get("REPRO_PARALLEL_GATE_MIN", "2.0" if REQUIRE_GATE else "1.0")
)


def _mintime(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _worker_counts(cores: int) -> list[int]:
    counts = {1, 2}
    if cores > 2:
        counts.add(min(cores, 8))
    return sorted(counts)


def test_parallel_scaling(benchmark, results_dir, bench_header):
    """[real] sequential vs thread vs process wall clock across workers."""
    cores = os.cpu_count() or 1
    repeats = 2 if SMOKE else 5

    # VGG-3.2 scaled to laptop size but kept heavy enough that stage-2
    # arithmetic dominates the fork-join overhead (~10 ms of barrier and
    # shared-memory traffic per request on this class of host).
    scaling = (
        dict(batch=2, channels_divisor=16, image_divisor=2)
        if SMOKE
        else dict(batch=8, channels_divisor=2, image_divisor=2)
    )
    layer = TABLE2_LAYERS[2].scaled(**scaling)
    spec = FmrSpec.uniform(layer.ndim, 4, 3)
    rng = np.random.default_rng(22)
    img = rng.standard_normal(
        (layer.batch, layer.c_in) + layer.image
    ).astype(np.float32)
    ker = (
        rng.standard_normal((layer.c_in, layer.c_out) + layer.kernel) * 0.1
    ).astype(np.float32)
    ref = direct_convolution(
        img.astype(np.float64), ker.astype(np.float64), layer.padding
    )
    ref_scale = float(np.abs(ref).max())

    simd = parallel_simd_width(layer.c_in, layer.c_out)
    blocking: BlockingConfig = default_parallel_blocking(
        layer.c_in, layer.c_out, simd
    )

    def check(y, label):
        relerr = float(np.abs(y.astype(np.float64) - ref).max() / ref_scale)
        assert relerr < 1e-3, f"{label}: relerr {relerr}"
        return relerr

    def run():
        records = []

        # Sequential baseline: plan built once (compile time excluded,
        # as for the executors); the timed body is kernel transform +
        # 3-stage execute -- the same work the parallel pipelines do.
        plan = WinogradPlan(
            spec=spec,
            input_shape=img.shape,
            c_out=layer.c_out,
            padding=layer.padding,
            dtype=np.float32,
        )
        y = plan.execute(img, plan.transform_kernels(ker))
        relerr = check(y, "sequential")
        t_seq = _mintime(
            lambda: plan.execute(img, plan.transform_kernels(ker)), repeats
        )
        records.append(
            {"backend": "sequential", "workers": 1, "min_ms": t_seq * 1e3,
             "speedup_vs_sequential": 1.0, "relerr_vs_direct": relerr}
        )

        y_thread = None
        for backend, cls, kw in (
            ("thread", ParallelWinogradExecutor, "n_threads"),
            ("process", ProcessWinogradExecutor, "n_workers"),
        ):
            for n in _worker_counts(cores):
                execu = cls(
                    plan=plan, blocking=blocking, simd_width=simd, **{kw: n}
                )
                try:
                    y = execu.execute(img, ker)
                    relerr = check(y, f"{backend}@{n}")
                    if backend == "thread" and n == 2:
                        y_thread = y.copy()
                    elif backend == "process" and n == 2 and y_thread is not None:
                        # Identical summation order => bitwise equality.
                        assert np.array_equal(y, y_thread), (
                            "process and thread backends diverged bitwise"
                        )
                    t = _mintime(lambda: execu.execute(img, ker), repeats)
                finally:
                    execu.shutdown()
                records.append(
                    {"backend": backend, "workers": n, "min_ms": t * 1e3,
                     "speedup_vs_sequential": t_seq / t,
                     "relerr_vs_direct": relerr}
                )
        return records

    records = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [r["backend"], r["workers"], f"{r['min_ms']:.2f}",
         f"{r['speedup_vs_sequential']:.2f}", f"{r['relerr_vs_direct']:.1e}"]
        for r in records
    ]
    print(f"\nParallel scaling [real] -- {layer.label} scaled "
          f"(B={layer.batch} C={layer.c_in}->{layer.c_out} "
          f"I={'x'.join(map(str, layer.image))}), host cores: {cores}")
    print(format_table(
        ["backend", "workers", "min_ms", "vs_sequential", "relerr"], rows
    ))

    payload = {
        **bench_header,
        "smoke": SMOKE,
        "layer": layer.label,
        "scaled_shape": f"B{layer.batch} {layer.c_in}->{layer.c_out}"
                        f"@{'x'.join(map(str, layer.image))}",
        "spec": str(spec),
        "blocking": blocking.describe(),
        "records": records,
    }
    out = results_dir / "BENCH_parallel.json"
    out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {out}")

    # The scaling gate needs real cores to be meaningful: a 1-core host
    # cannot show parallel speedup, and smoke mode trims the layer below
    # the size where fork-join overhead amortizes.  Skip *explicitly* in
    # both cases -- after the JSON is written -- so a gate that did not
    # run shows up as a skip in the report, never as a silent pass.
    if SMOKE:
        msg = "smoke mode: JSON written, scaling gate needs the full layer"
        if REQUIRE_GATE:
            pytest.fail(f"REPRO_REQUIRE_PARALLEL_GATE set but {msg}")
        pytest.skip(msg)
    if cores < 2:
        msg = (
            f"host has {cores} core(s): JSON written with honest numbers, "
            "but the parallel-speedup gate requires >= 2 real cores"
        )
        if REQUIRE_GATE:
            pytest.fail(
                f"REPRO_REQUIRE_PARALLEL_GATE set on an unfit host -- {msg}"
            )
        pytest.skip(msg)
    best = max(
        r["speedup_vs_sequential"]
        for r in records
        if r["backend"] == "process" and r["workers"] >= 2
    )
    assert best >= GATE_MIN, (
        f"process backend did not clear the {GATE_MIN}x scaling gate "
        f"(best {best:.2f}x vs sequential on {cores} cores)"
    )
