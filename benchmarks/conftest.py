"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Two kinds of measurements coexist:

* **simulated** numbers from the machine model (the Fig. 5 / Fig. 6
  analogs -- tagged ``[model]`` in all output), and
* **wall-clock** numbers of the real numpy execution on laptop-scale
  surrogates, measured by pytest-benchmark (tagged ``[real]``).

The two are never mixed in one table.
"""

from __future__ import annotations

import atexit
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.util.wisdom import Wisdom

RESULTS_DIR = Path(__file__).parent / "results"
WISDOM_PATH = RESULTS_DIR / "wisdom.json"


def make_bench_header() -> dict:
    """Provenance header shared by every ``BENCH_*.json`` emitter.

    Records what produced the numbers (git sha, host core count,
    python/numpy versions, the C compiler if any) so result files from
    different checkouts and hosts are comparable -- or visibly not.
    """
    import numpy

    def _git_sha() -> str:
        try:
            return subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).parent, capture_output=True, text=True,
                timeout=10, check=True,
            ).stdout.strip()
        except (OSError, subprocess.SubprocessError):
            return "unknown"

    def _cc_version() -> str | None:
        for cc in (os.environ.get("CC"), "cc", "gcc", "clang"):
            if not cc:
                continue
            try:
                out = subprocess.run(
                    [cc, "--version"], capture_output=True, text=True,
                    timeout=10, check=True,
                ).stdout
                return out.splitlines()[0] if out else cc
            except (OSError, subprocess.SubprocessError):
                continue
        return None

    return {
        "git_sha": _git_sha(),
        "host_cores": os.cpu_count(),
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "cc": _cc_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


@pytest.fixture(scope="session")
def bench_header() -> dict:
    return make_bench_header()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def shared_wisdom(results_dir) -> Wisdom:
    """Session-wide wisdom store, persisted across benchmark runs so the
    autotuning search (the expensive part) happens once per layer shape."""
    if WISDOM_PATH.exists():
        try:
            wisdom = Wisdom.load(WISDOM_PATH)
        except ValueError:
            wisdom = Wisdom()
    else:
        wisdom = Wisdom()
    atexit.register(lambda: wisdom.save(WISDOM_PATH))
    return wisdom


# Reporting helpers shared with the CLI (single implementation).
from repro.util.reporting import format_table, write_csv  # noqa: E402,F401
