"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Two kinds of measurements coexist:

* **simulated** numbers from the machine model (the Fig. 5 / Fig. 6
  analogs -- tagged ``[model]`` in all output), and
* **wall-clock** numbers of the real numpy execution on laptop-scale
  surrogates, measured by pytest-benchmark (tagged ``[real]``).

The two are never mixed in one table.
"""

from __future__ import annotations

import atexit
from pathlib import Path

import pytest

from repro.util.wisdom import Wisdom

RESULTS_DIR = Path(__file__).parent / "results"
WISDOM_PATH = RESULTS_DIR / "wisdom.json"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def shared_wisdom(results_dir) -> Wisdom:
    """Session-wide wisdom store, persisted across benchmark runs so the
    autotuning search (the expensive part) happens once per layer shape."""
    if WISDOM_PATH.exists():
        try:
            wisdom = Wisdom.load(WISDOM_PATH)
        except ValueError:
            wisdom = Wisdom()
    else:
        wisdom = Wisdom()
    atexit.register(lambda: wisdom.save(WISDOM_PATH))
    return wisdom


# Reporting helpers shared with the CLI (single implementation).
from repro.util.reporting import format_table, write_csv  # noqa: E402,F401
