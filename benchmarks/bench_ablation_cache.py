"""E11 (extension) -- cache behaviour of the blocked GEMM loop order.

Sec. 4.3's design rests on one cache property: for each ``(k, j)`` the
stationary sub-matrix ``V_kj`` is loaded into L2 once and *stays there*
while every row block ``U_ik`` streams past it.  This bench replays the
exact address stream of the blocked loop (addresses from the Table-1
layout address translation) through the L2 cache simulator and measures
V's hit rate under the paper's loop order versus a naive row-major
order that touches every V block per row block.
"""

from __future__ import annotations

from conftest import format_table, write_csv
from repro.core.blocking import BlockingConfig
from repro.core.layout import TransformedImageLayout, TransformedKernelLayout
from repro.machine.cache import CacheSim

BLK = BlockingConfig(n_blk=28, c_blk=64, cprime_blk=64)
# A stage-2 slice whose full V working set (C/C_blk * C'/C'_blk blocks
# = 1 MB per t) exceeds the 512 KB L2 -- the regime where loop order
# decides whether V_kj stays resident.
NB, C, CP, T = 672, 512, 512, 1
FLOAT = 4


def _simulate(order: str) -> dict:
    """Replay the stage-2 address stream for one loop order.

    Returns per-array L2 statistics.  Addresses: U in its packed layout
    starting at 0, V after it, X after V (64-byte aligned regions).
    """
    u_layout = TransformedImageLayout(nb=NB, channels=C, t=T, blocking=BLK)
    v_layout = TransformedKernelLayout(channels=C, c_out=CP, t=T, blocking=BLK)
    u_base = 0
    v_base = u_layout.row_blocks * (C // BLK.c_blk) * T * BLK.n_blk * BLK.c_blk * FLOAT
    l2 = CacheSim(size_bytes=512 * 1024, line_bytes=64, assoc=16)

    v_hits = v_misses = 0
    rb = u_layout.row_blocks
    kb = C // BLK.c_blk
    jb = CP // BLK.cprime_blk

    def touch_u(i, k, ti):
        start = u_base + u_layout.locate(i * BLK.n_blk, k * BLK.c_blk, ti) * FLOAT
        l2.access_range(start, BLK.n_blk * BLK.c_blk * FLOAT)

    def touch_v(k, j, ti):
        nonlocal v_hits, v_misses
        start = v_base + v_layout.locate(k * BLK.c_blk, j * BLK.cprime_blk, ti) * FLOAT
        before = (l2.stats.hits, l2.stats.misses)
        l2.access_range(start, BLK.c_blk * BLK.cprime_blk * FLOAT)
        v_hits += l2.stats.hits - before[0]
        v_misses += l2.stats.misses - before[1]

    if order == "paper (V stationary)":
        for ti in range(T):
            for j in range(jb):
                for k in range(kb):
                    for i in range(rb):
                        touch_v(k, j, ti)   # stays hot after block 0
                        touch_u(i, k, ti)
    elif order == "naive (row-major)":
        for ti in range(T):
            for i in range(rb):
                for j in range(jb):
                    for k in range(kb):
                        touch_v(k, j, ti)   # re-fetched constantly
                        touch_u(i, k, ti)
    else:
        raise ValueError(order)
    return {
        "v_hit_rate": v_hits / max(1, v_hits + v_misses),
        "total_misses": l2.stats.misses,
    }


def test_v_residency(benchmark, results_dir):
    """[real cache-sim] V stays resident under the paper's loop order."""

    def build():
        rows = []
        for order in ("paper (V stationary)", "naive (row-major)"):
            stats = _simulate(order)
            rows.append(
                [order, f"{stats['v_hit_rate'] * 100:.1f}%", stats["total_misses"]]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["loop order", "V hit rate (L2)", "total L2 misses"]
    print("\nBlocked-GEMM cache behaviour [cache-sim]")
    print(format_table(headers, rows))
    write_csv(results_dir / "cache_residency.csv", headers, rows)

    paper = float(rows[0][1].rstrip("%"))
    naive = float(rows[1][1].rstrip("%"))
    assert paper > 90.0      # V essentially always hits after warmup
    assert paper > naive     # the paper's order strictly dominates
    assert rows[0][2] < rows[1][2]
