"""E10 (extension) -- interpolation-point sensitivity of the fp32 error.

Sec. 5.3's errors are not intrinsic to "Winograd F(m, r)": every choice
of distinct interpolation points gives an algebraically exact algorithm,
but float32 conditioning varies by orders of magnitude.  This ablation
measures the real fp32 error of F(6, 3) under three point families:

* the curated default (small magnitudes, symmetric signs, exact halves),
* naive non-negative integers 0, 1, 2, ..., 6,
* symmetric but large integers 0, +-3, +-6, +-9.

This grounds EXPERIMENTS.md's explanation of why our absolute Table-3
errors differ from the paper's while the trends match: the paper's
Wincnn-derived matrices are one member of the equivalence family.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from conftest import format_table, write_csv
from repro.core.fmr import FmrSpec
from repro.core.transforms import winograd_1d
from repro.core.convolution import winograd_convolution
from repro.nets.reference import reference_convolution

POINT_FAMILIES = {
    "curated (default)": None,  # use the library default
    "naive 0..6": tuple(Fraction(i) for i in range(7)),
    "symmetric large": tuple(
        Fraction(i) for i in (0, 3, -3, 6, -6, 9, -9)
    ),
}


def _measure(points) -> tuple[float, float]:
    """(max_abs_matrix_entry, fp32 avg error) for F(6,3) with ``points``."""
    t = winograd_1d(6, 3, points=points)
    # Build a custom 2D F(6x6,3x3) conv using these matrices via the
    # transform cache: easiest is a 1D convolution driven through the
    # N-D pipeline with a rank-1 spec.
    rng = np.random.default_rng(0)
    images = rng.uniform(-0.1, 0.1, size=(1, 64, 50)).astype(np.float32)
    kernels = rng.normal(size=(64, 64, 3)).astype(np.float32) * 0.1
    spec = FmrSpec(m=(6,), r=(3,))
    # Temporarily monkey-free: winograd_1d caches per-points, and the
    # plan pulls from the same cache via winograd_nd -- so we inject by
    # computing directly with the generated triple.
    from repro.core.transforms import transform_tensor
    from repro.core.tiling import assemble_output, extract_tiles, plan_tiles

    a, b, g = t.as_arrays(np.float32)
    grid = plan_tiles(spec, (50,))
    tiles = extract_tiles(images, grid)
    u = transform_tensor(tiles, [b])
    w = transform_tensor(kernels, [g])
    n = grid.total_tiles
    tt = spec.tile_elements
    u_m = u.reshape(1, 64, n, tt).transpose(3, 0, 2, 1).reshape(tt, n, 64)
    w_m = w.reshape(64, 64, tt).transpose(2, 0, 1)
    x = np.matmul(u_m, w_m)
    out_tiles = x.reshape(tt, 1, n, 64).transpose(1, 3, 2, 0)
    out_tiles = transform_tensor(out_tiles, [a])
    out = assemble_output(out_tiles, grid)
    ref = reference_convolution(images, kernels)
    err = float(np.abs(out.astype(np.longdouble) - ref).mean())
    return t.max_abs_entry(), err


def test_point_sensitivity(benchmark, results_dir):
    """[real] fp32 error of F(6,3) under different point families."""

    def build():
        rows = []
        for name, points in POINT_FAMILIES.items():
            max_entry, err = _measure(points)
            rows.append([name, f"{max_entry:.1f}", f"{err:.2E}"])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["point family", "max |matrix entry|", "fp32 avg error"]
    print("\nInterpolation-point sensitivity [real] -- F(6,3)")
    print(format_table(headers, rows))
    write_csv(results_dir / "point_sensitivity.csv", headers, rows)

    errs = {r[0]: float(r[2]) for r in rows}
    entries = {r[0]: float(r[1]) for r in rows}
    # The curated points are orders of magnitude better conditioned.
    assert errs["curated (default)"] * 10 < errs["naive 0..6"]
    assert errs["curated (default)"] * 10 < errs["symmetric large"]
    # Error tracks the matrix-entry magnitude (the conditioning proxy).
    assert entries["curated (default)"] < entries["naive 0..6"]
