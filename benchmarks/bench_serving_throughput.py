"""E16 (extension) -- serving-path throughput through the execution engine.

The paper's premise is that Winograd wins only once per-layer overheads
are amortized (Sec. 4.2-4.4).  This bench quantifies that premise on the
serving path: a *cold* ``winograd_convolution`` call pays exact-rational
transform generation, plan construction and workspace allocation on
every request, while a *warm* :class:`repro.core.engine.ConvolutionEngine`
call hits the plan cache, reuses the kernel transforms (FX mode), leases
buffers from the workspace arena, and runs a tuned ``F(m, r)``.

Measured per layer (three representative scaled Table-2 VGG rows):

* cold latency -- one-shot ``winograd_convolution`` with process caches
  cleared first (what a naive fresh-process deployment pays),
* first-call engine latency -- plan-cache miss (build + first run),
* warm latency + sustained req/s -- steady-state serving,
* the honest same-spec ratio -- warm vs. a cold call pinned to the same
  ``F(m, r)`` the engine chose, isolating the amortization win from the
  tile-size win.

Results land in ``results/BENCH_serving.json`` so the perf trajectory is
tracked across PRs.  Acceptance gate: warm engine >= 5x faster than the
cold one-shot path on at least one VGG-style layer.

Set ``REPRO_BENCH_SMOKE=1`` for a quick CI smoke run (one layer, fewer
repeats, relaxed 2x gate).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from conftest import format_table
from repro.core.convolution import winograd_convolution
from repro.core.engine import ConvolutionEngine, clear_compile_caches
from repro.nets.layers import TABLE2_LAYERS
from repro.nets.reference import direct_convolution

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: (table-2 row index, scaling) -- all VGG rows, scaled to laptop size
#: while spanning distinct channel/extent combinations.
_LAYER_SCALING = [
    (0, dict(batch=8, channels_divisor=2, image_divisor=8)),   # VGG-1.2: C=32, 28x28
    (2, dict(batch=8, channels_divisor=4, image_divisor=2)),   # VGG-3.2: C=64, 28x28
    (4, dict(batch=8, channels_divisor=8, image_divisor=1)),   # VGG-5.2: C=64, 14x14
]


def _mintime(fn, repeats, setup=None):
    """Min-of-k wall clock -- the only stable statistic on a noisy
    shared-CPU container (observed 2x run-to-run swings in the mean)."""
    best = float("inf")
    for _ in range(repeats):
        if setup is not None:
            setup()
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_serving_throughput(benchmark, results_dir, bench_header):
    """[real] cold one-shot vs warm engine latency and sustained req/s."""
    scalings = _LAYER_SCALING[:1] if SMOKE else _LAYER_SCALING
    cold_repeats = 2 if SMOKE else 4
    warm_iters = 6 if SMOKE else 20

    def run():
        rows = []
        records = []
        for idx, scaling in scalings:
            layer = TABLE2_LAYERS[idx].scaled(**scaling)
            rng = np.random.default_rng(idx)
            img = rng.standard_normal(
                (layer.batch, layer.c_in) + layer.image
            ).astype(np.float32)
            ker = (
                rng.standard_normal((layer.c_in, layer.c_out) + layer.kernel) * 0.1
            ).astype(np.float32)

            # Cold path: fresh-process equivalent (caches cleared), the
            # conservative default F(2, 3) spec.
            t_cold = _mintime(
                lambda: winograd_convolution(img, ker, padding=layer.padding),
                cold_repeats, setup=clear_compile_caches,
            )

            # Engine: first call is the plan-cache miss...
            engine = ConvolutionEngine()
            clear_compile_caches()
            t0 = time.perf_counter()
            y = engine.run(img, ker, padding=layer.padding)
            t_first = time.perf_counter() - t0

            # ...then steady-state serving.
            warm = []
            for _ in range(warm_iters):
                t0 = time.perf_counter()
                engine.run(img, ker, padding=layer.padding)
                warm.append(time.perf_counter() - t0)
            t_warm = min(warm)
            req_s = len(warm) / sum(warm)

            # Honest same-spec cold baseline: pin the engine's F(m, r).
            spec = engine.plans.keys()[0].spec
            t_cold_same = _mintime(
                lambda: winograd_convolution(
                    img, ker, fmr=spec, padding=layer.padding
                ),
                cold_repeats, setup=clear_compile_caches,
            )

            # Cheap correctness guard so the speedup is of the right answer.
            ref = direct_convolution(
                img.astype(np.float64), ker.astype(np.float64), layer.padding
            )
            relerr = float(np.abs(y - ref).max() / np.abs(ref).max())
            assert relerr < 1e-3, f"{layer.label}: relerr {relerr}"

            stats = engine.stats()
            record = {
                "layer": layer.label,
                "scaled_shape": f"B{layer.batch} {layer.c_in}->{layer.c_out}"
                                f"@{'x'.join(map(str, layer.image))}",
                "spec": str(spec),
                "cold_ms": t_cold * 1e3,
                "cold_same_spec_ms": t_cold_same * 1e3,
                "first_call_ms": t_first * 1e3,
                "warm_ms": t_warm * 1e3,
                "req_per_s": req_s,
                "speedup_vs_cold": t_cold / t_warm,
                "speedup_same_spec": t_cold_same / t_warm,
                "relerr_vs_direct": relerr,
                "cache": stats["plans"],
                "arena": stats["arena"],
            }
            records.append(record)
            rows.append([
                layer.label, record["scaled_shape"], record["spec"],
                f"{record['cold_ms']:.2f}", f"{record['first_call_ms']:.2f}",
                f"{record['warm_ms']:.2f}", f"{record['req_per_s']:.0f}",
                f"{record['speedup_vs_cold']:.2f}",
                f"{record['speedup_same_spec']:.2f}",
            ])
        return rows, records

    rows, records = benchmark.pedantic(run, rounds=1, iterations=1)

    headers = ["layer", "scaled shape", "F(m,r)", "cold_ms", "first_ms",
               "warm_ms", "req/s", "vs_cold", "same_spec"]
    print("\nServing path [real] -- cold one-shot vs warm engine")
    print(format_table(headers, rows))

    payload = {**bench_header, "smoke": SMOKE, "layers": records}
    out = results_dir / "BENCH_serving.json"
    out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {out}")

    best = max(r["speedup_vs_cold"] for r in records)
    gate = 2.0 if SMOKE else 5.0
    assert best >= gate, (
        f"warm engine only {best:.2f}x faster than cold winograd_convolution "
        f"(gate {gate}x)"
    )
    # Amortization alone (same F(m, r)) must also win, just by less.
    assert all(r["speedup_same_spec"] > 1.0 for r in records)
