"""E18 (extension) -- whole-network estimates, and E27 whole-graph [real].

Table 2 benchmarks layers; the networks motivate them.  This bench
computes, for each full architecture: the Table-2 coverage of total
FLOPs, the simulated end-to-end Winograd time on KNL (inference, tuned
per layer), the direct-convolution roofline time, and the Sec. 4.4
shared-workspace size.

The second half is wall-clock: each network is lowered to the graph IR
and run two ways through the *same* engine -- layer-at-a-time (every
conv on Winograd, each node materialized into a fresh array, epilogues
as separate passes) versus the planned graph path (per-node algorithm
portfolio, elementwise epilogues fused into the conv's stage-3 write,
inter-layer buffers leased from one arena).  Results land in
``results/BENCH_graph.json``.

Gates: the graph path is >= 1.2x layer-at-a-time on at least one
network (>= 1.05x in smoke mode), and the fused path performs zero
inter-layer copies.

Set ``REPRO_BENCH_SMOKE=1`` for a quick CI run (smaller networks,
fewer repeats).
"""

from __future__ import annotations

import json
import os
import time
from math import prod

import numpy as np

from conftest import format_table, write_csv
from repro.baselines.direct import mkldnn_direct
from repro.core.convolution import WinogradPlan, max_workspace_bytes
from repro.core.engine import ConvolutionEngine
from repro.core.fmr import FmrSpec
from repro.graph import (
    GraphExecutor,
    execute_plan_naive,
    graph_scaled_c3d,
    graph_scaled_fusionnet,
    graph_scaled_vgg,
    plan_graph,
    residual_block,
)
from repro.machine.spec import KNL_7210
from repro.nets.architectures import ARCHITECTURES, benchmarked_fraction
from repro.nets.network import network_model_time

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

GRAPH_REPEATS = 3 if SMOKE else 7
GRAPH_WARMUP = 1 if SMOKE else 2


def _executable(layers):
    """Rows the fast path can run (SIMD-divisible channels)."""
    return [l for l in layers if l.c_in % 16 == 0 and l.c_out % 16 == 0]


def test_whole_network_estimates(benchmark, results_dir, shared_wisdom):
    """[model] Per-network: coverage, Winograd vs direct time, workspace."""

    def build():
        rows = []
        direct = mkldnn_direct()
        for name, builder in sorted(ARCHITECTURES.items()):
            layers = _executable(builder())
            pairs = [
                (l, FmrSpec.uniform(l.ndim, 4 if l.ndim == 2 else 2, 3))
                for l in layers
            ]
            wino_s = network_model_time(
                pairs, KNL_7210, wisdom=shared_wisdom, inference_only=True
            )
            direct_s = sum(direct.predicted_seconds(l) for l in layers)
            plans = [
                WinogradPlan(
                    spec=fmr,
                    input_shape=(l.batch, l.c_in) + l.image,
                    c_out=l.c_out,
                    padding=l.padding,
                )
                for l, fmr in pairs
            ]
            ws_mb = max_workspace_bytes(plans) / 1e6
            act_mb = sum(
                l.batch * l.c_in * prod(l.image) * 4 for l in layers
            ) / 1e6
            rows.append(
                [
                    name,
                    len(layers),
                    f"{benchmarked_fraction(name) * 100:.0f}%",
                    f"{wino_s * 1e3:.1f}",
                    f"{direct_s * 1e3:.1f}",
                    f"{direct_s / wino_s:.2f}",
                    f"{ws_mb:.0f}",
                    f"{act_mb:.0f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = [
        "network", "conv layers", "Table2 FLOP share", "wino_ms", "direct_ms",
        "speedup", "workspace_MB", "activations_MB",
    ]
    print("\nWhole-network estimates [model] -- KNL, inference")
    print(format_table(headers, rows))
    write_csv(results_dir / "whole_network.csv", headers, rows)

    for r in rows:
        # Winograd wins end to end on every network.
        assert float(r[5]) > 1.0, r
        # Sec. 4.4: workspace is of the same order as (not vastly beyond)
        # the activation footprint of a deep network.
        assert float(r[6]) < 20 * float(r[7]), r


# ----------------------------------------------------------------------
# E27: whole-graph execution vs layer-at-a-time [real]
# ----------------------------------------------------------------------

def _graph_networks():
    """(label, graph) pairs for the wall-clock comparison.

    The bottleneck block is the portfolio showcase: its two 1x1 convs
    are pure channel GEMMs where the per-node planner swaps Winograd
    for im2col, on top of the fusion/arena win shared by all networks.
    """
    if SMOKE:
        return [
            ("vgg-s", graph_scaled_vgg(batch=1, seed=0)),
            ("bottleneck", residual_block(
                c=32, size=16, kind="bottleneck", seed=0)),
        ]
    return [
        ("vgg-s", graph_scaled_vgg(batch=1, seed=0)),
        ("fusionnet-s", graph_scaled_fusionnet(batch=1, seed=0)),
        ("c3d-s", graph_scaled_c3d(batch=1, seed=0)),
        ("bottleneck", residual_block(
            c=64, size=32, kind="bottleneck", seed=0)),
    ]


def _graph_feeds(graph, seed=0):
    rng = np.random.default_rng(seed)
    return {
        name: rng.standard_normal(shape).astype(np.float32)
        for name, shape in graph.inputs.items()
    }


def _paired_graph_seconds(run_a, run_b, repeats=GRAPH_REPEATS):
    """Best-of-N for two callables with repeats interleaved, so clock
    drift and background load hit both paths comparably."""
    for _ in range(GRAPH_WARMUP):
        run_a()
        run_b()
    best = [float("inf"), float("inf")]
    for _ in range(repeats):
        for i, fn in enumerate((run_a, run_b)):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def test_graph_vs_layer_at_a_time(results_dir, bench_header):
    """[real] Planned graph path vs naive node-at-a-time replay."""
    engine = ConvolutionEngine()
    records = []
    rows = []
    for label, graph in _graph_networks():
        feeds = _graph_feeds(graph)
        # Layer-at-a-time comparator: same graph, every conv pinned to
        # Winograd, no fusion, every node materialized independently.
        naive_plan = plan_graph(
            graph, engine, algorithm="winograd", fuse=False
        )
        executor = GraphExecutor(graph, engine, algorithm="auto")
        naive_s, graph_s = _paired_graph_seconds(
            lambda: execute_plan_naive(naive_plan, engine, feeds),
            lambda: executor.run(feeds),
        )

        # The fused path must not copy between layers: count one run.
        copies0 = engine.metrics.counter_value("graph.interlayer_copies")
        executor.run(feeds)
        copies = (
            engine.metrics.counter_value("graph.interlayer_copies") - copies0
        )
        assert copies == 0, (
            f"{label}: fused graph path performed {copies} inter-layer copies"
        )

        plan = executor.plan
        algorithms = {
            np_.name: np_.algorithm for np_ in plan.conv_plans
        }
        speedup = naive_s / graph_s
        records.append({
            "network": label,
            "conv_nodes": len(plan.conv_plans),
            "folded_nodes": len(plan.folded_into),
            "algorithms": algorithms,
            "arena_bytes": plan.arena_bytes,
            "layer_at_a_time_seconds": naive_s,
            "graph_seconds": graph_s,
            "speedup": speedup,
            "interlayer_copies": copies,
        })
        rows.append([
            label, len(plan.conv_plans), len(plan.folded_into),
            ",".join(sorted(set(algorithms.values()))),
            f"{naive_s * 1e3:.2f}", f"{graph_s * 1e3:.2f}",
            f"{speedup:.2f}x",
        ])

    print(f"\nWhole-graph execution vs layer-at-a-time [real], "
          f"host cores: {os.cpu_count()}")
    print(format_table(
        ["network", "convs", "folded", "algorithms",
         "layerwise_ms", "graph_ms", "speedup"],
        rows,
    ))

    payload = {
        **bench_header,
        "smoke": SMOKE,
        "repeats": GRAPH_REPEATS,
        "records": records,
    }
    out = results_dir / "BENCH_graph.json"
    out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {out}")

    # Gate: the graph path pays off on at least one network.  The 1.2x
    # target comes from fusion + arena + the portfolio's im2col pick on
    # the bottleneck's 1x1 convs; smoke mode (tiny shapes, shared CI
    # hosts) only checks the sign.
    need = 1.05 if SMOKE else 1.2
    best = max(r["speedup"] for r in records)
    assert best >= need, (
        f"expected >= {need}x graph-path speedup on at least one network, "
        f"best was {best:.2f}x: "
        f"{[(r['network'], round(r['speedup'], 2)) for r in records]}"
    )
