"""E18 (extension) -- whole-network estimates.

Table 2 benchmarks layers; the networks motivate them.  This bench
computes, for each full architecture: the Table-2 coverage of total
FLOPs, the simulated end-to-end Winograd time on KNL (inference, tuned
per layer), the direct-convolution roofline time, and the Sec. 4.4
shared-workspace size.
"""

from __future__ import annotations

from math import prod

from conftest import format_table, write_csv
from repro.baselines.direct import mkldnn_direct
from repro.core.convolution import WinogradPlan, max_workspace_bytes
from repro.core.fmr import FmrSpec
from repro.machine.spec import KNL_7210
from repro.nets.architectures import ARCHITECTURES, benchmarked_fraction
from repro.nets.network import network_model_time


def _executable(layers):
    """Rows the fast path can run (SIMD-divisible channels)."""
    return [l for l in layers if l.c_in % 16 == 0 and l.c_out % 16 == 0]


def test_whole_network_estimates(benchmark, results_dir, shared_wisdom):
    """[model] Per-network: coverage, Winograd vs direct time, workspace."""

    def build():
        rows = []
        direct = mkldnn_direct()
        for name, builder in sorted(ARCHITECTURES.items()):
            layers = _executable(builder())
            pairs = [
                (l, FmrSpec.uniform(l.ndim, 4 if l.ndim == 2 else 2, 3))
                for l in layers
            ]
            wino_s = network_model_time(
                pairs, KNL_7210, wisdom=shared_wisdom, inference_only=True
            )
            direct_s = sum(direct.predicted_seconds(l) for l in layers)
            plans = [
                WinogradPlan(
                    spec=fmr,
                    input_shape=(l.batch, l.c_in) + l.image,
                    c_out=l.c_out,
                    padding=l.padding,
                )
                for l, fmr in pairs
            ]
            ws_mb = max_workspace_bytes(plans) / 1e6
            act_mb = sum(
                l.batch * l.c_in * prod(l.image) * 4 for l in layers
            ) / 1e6
            rows.append(
                [
                    name,
                    len(layers),
                    f"{benchmarked_fraction(name) * 100:.0f}%",
                    f"{wino_s * 1e3:.1f}",
                    f"{direct_s * 1e3:.1f}",
                    f"{direct_s / wino_s:.2f}",
                    f"{ws_mb:.0f}",
                    f"{act_mb:.0f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = [
        "network", "conv layers", "Table2 FLOP share", "wino_ms", "direct_ms",
        "speedup", "workspace_MB", "activations_MB",
    ]
    print("\nWhole-network estimates [model] -- KNL, inference")
    print(format_table(headers, rows))
    write_csv(results_dir / "whole_network.csv", headers, rows)

    for r in rows:
        # Winograd wins end to end on every network.
        assert float(r[5]) > 1.0, r
        # Sec. 4.4: workspace is of the same order as (not vastly beyond)
        # the activation footprint of a deep network.
        assert float(r[6]) < 20 * float(r[7]), r
