"""E15 (extension) -- real wall-clock Fig. 5 counterpart.

The Fig. 5 table proper is modelled (the paper's runtimes are silicon
artifacts), but the *algorithmic* part of the speedup -- fewer
multiplications through the three-stage pipeline -- is measurable in
plain numpy too.  This bench times the real execution of every Table-2
layer (scaled to laptop size, preserving structure) with our pipeline
(FX mode) against the direct reference, and checks the qualitative
claim: Winograd wins on every layer family once channels are large
enough for the GEMM stage to dominate.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import format_table, write_csv
from repro.core.convolution import WinogradPlan
from repro.core.fmr import FmrSpec
from repro.nets.layers import TABLE2_LAYERS
from repro.nets.reference import direct_convolution


def _scaled(layer):
    """Halve channels (GEMM dominance needs big C), shrink images to a
    24..56 extent so every layer keeps a healthy tile count."""
    target = 40
    divisor = max(1, round(max(layer.image) / target))
    return layer.scaled(batch=1, channels_divisor=2, image_divisor=divisor)


def _time(fn, *args, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def test_real_all_layers(benchmark, results_dir):
    """[real] ours (FX) vs direct, wall clock, all 16 scaled layers."""

    def build():
        rows = []
        for layer in TABLE2_LAYERS:
            s = _scaled(layer)
            m = 4 if s.ndim == 2 else 2
            rng = np.random.default_rng(1)
            img = rng.normal(size=(s.batch, s.c_in) + s.image).astype(np.float32)
            ker = rng.normal(size=(s.c_in, s.c_out) + s.kernel).astype(np.float32)
            plan = WinogradPlan(
                spec=FmrSpec.uniform(s.ndim, m, 3),
                input_shape=img.shape, c_out=s.c_out, padding=s.padding,
                dtype=np.float32,
            )
            w = plan.transform_kernels(ker)
            t_wino = _time(plan.execute, img, w)
            t_direct = _time(direct_convolution, img, ker, s.padding)
            rows.append(
                [
                    layer.label,
                    f"{s.c_in}->{s.c_out}@{'x'.join(map(str, s.image))}",
                    f"{t_wino * 1e3:.1f}",
                    f"{t_direct * 1e3:.1f}",
                    f"{t_direct / t_wino:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["layer", "scaled shape", "wino_ms", "direct_ms", "speedup"]
    print("\nReal wall-clock, scaled layers [real] -- numpy, single core")
    print(format_table(headers, rows))
    write_csv(results_dir / "real_layers.csv", headers, rows)

    speedups = {r[0]: float(r[4]) for r in rows}
    channels = {r[0]: int(r[1].split("->")[0]) for r in rows}
    # The crossover structure: layers with large channel counts (where
    # the GEMM stage dominates) win in real wall clock; the mean over
    # those layers exceeds 1.  Tiny-channel layers may lose to numpy
    # overheads -- exactly the regime argument of Sec. 3.3.
    big = [s for l, s in speedups.items() if channels[l] >= 128]
    assert big, "no large-channel layers in the sweep"
    assert float(np.mean(big)) > 1.0
    assert sum(1 for s in big if s > 1.0) >= len(big) * 0.6
