"""E14 (extension) -- threads-per-core sweep (paper Sec. 4.3.2).

The paper tunes "how many threads to use per core empirically for each
particular layer shape": 2 or 4 threads per core better hide latency on
KNL's two-issue front end, but shrink each thread's L2 share, capping
the blocking.  This bench sweeps 1/2/4 threads per core for several
layers and reports the modelled best, confirming the parameter is
layer-dependent (which is why it lives in the wisdom file).
"""

from __future__ import annotations

from conftest import format_table, write_csv
from repro.core.autotune import autotune_layer
from repro.core.fmr import FmrSpec
from repro.machine.spec import KNL_7210
from repro.nets.layers import get_layer

LAYERS = [("VGG", "1.2"), ("VGG", "4.2"), ("FusionNet", "5.2"), ("C3D", "C3b")]


def test_threads_per_core_sweep(benchmark, results_dir, shared_wisdom):
    """[model] Best (blocking, time) per threads-per-core setting."""

    def build():
        rows = []
        for net, name in LAYERS:
            layer = get_layer(net, name)
            fmr = FmrSpec.uniform(layer.ndim, 4, 3)
            per_tpc = {}
            for tpc in (1, 2, 4):
                res = autotune_layer(
                    layer, fmr, KNL_7210,
                    threads_per_core_options=(tpc,),
                    n_blk_values=(6, 14, 28),
                )
                per_tpc[tpc] = res
                rows.append(
                    [
                        layer.label, tpc,
                        f"{res.blocking.c_blk}x{res.blocking.cprime_blk}",
                        res.blocking.n_blk,
                        f"{res.predicted_seconds * 1e3:.2f}",
                    ]
                )
            best_tpc = min(per_tpc, key=lambda k: per_tpc[k].predicted_seconds)
            rows.append([layer.label, "best", "->", best_tpc, ""])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["layer", "threads/core", "C_blk x C'_blk", "n_blk", "time_ms"]
    print("\nThreads-per-core sweep [model]")
    print(format_table(headers, rows))
    write_csv(results_dir / "threads_per_core.csv", headers, rows)

    # Structural claims: all sweeps produce valid times; the chosen
    # blocking respects the shrinking L2 share at 4 threads/core.
    for r in rows:
        if r[1] == 4:
            cb, cpb = map(int, r[2].split("x"))
            v_bytes = cb * cpb * 4
            assert v_bytes <= KNL_7210.l2_bytes_per_thread(4) // 2
    times = [float(r[4]) for r in rows if r[4]]
    assert all(t > 0 for t in times)
