"""Algorithm-portfolio benchmark: ``auto`` vs always-Winograd [real].

Sweeps kernel size (the crossover driver, r in {1, 3, 5, 7}), channels
and batch through two engines -- one pinned to ``algorithm="winograd"``,
one on ``algorithm="auto"`` -- and compares *warm* per-request latency.
The portfolio thesis (Sec. 2 of the paper, inverted): Winograd wins the
CNN workhorse regime (r = 3/5), but a 1x1 layer is a pure channel GEMM
the Winograd transforms can only slow down, and large-r small-channel
layers belong to the FFT.  ``auto`` should match Winograd where Winograd
wins (decision overhead < 2%) and beat it where it does not.

Results land in ``results/BENCH_portfolio.json`` with the per-shape
decision (algorithm, source, predicted/measured seconds) and the warm
dispatch-overhead measurement.

Gates:

* on every swept shape, ``auto`` is >= 1.0x Winograd within noise
  (asserted as auto <= 1.10x Winograd's time);
* at least two non-Winograd-favorable shapes run > 1.15x faster under
  ``auto`` (one in smoke mode);
* warm ``auto`` dispatch overhead on a Winograd-winning shape is < 5%
  (the memoized decision is one dict lookup; the 2% target is recorded,
  the gate is loosened for timer noise on shared CI hosts).

Set ``REPRO_BENCH_SMOKE=1`` for a quick CI run (four shapes, fewer
repeats).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core.engine import ConvolutionEngine
from repro.nets.layers import ConvLayerSpec
from repro.util.reporting import format_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

REPEATS = 5 if SMOKE else 15
WARMUP = 2 if SMOKE else 3


def _shape(r: int, c_in: int, c_out: int, img: int, batch: int = 1) -> ConvLayerSpec:
    return ConvLayerSpec(
        network="portfolio", name=f"r{r}c{c_in}-{c_out}i{img}b{batch}",
        batch=batch, c_in=c_in, c_out=c_out, image=(img, img),
        padding=(r // 2, r // 2), kernel=(r, r),
    )


#: The sweep: per r-regime, shapes on both sides of the crossover.
#: "wino" marks shapes the portfolio is expected to keep on Winograd
#: (used only for reporting; the gates count measured speedups).
FULL_SHAPES = [
    _shape(1, 32, 32, 64),
    _shape(1, 64, 64, 32, batch=2),
    _shape(3, 32, 32, 64),
    _shape(3, 64, 64, 32),
    _shape(5, 32, 32, 64),
    _shape(7, 8, 8, 96),
    _shape(7, 16, 16, 64),
    _shape(7, 8, 16, 96),
]
SMOKE_SHAPES = [
    _shape(1, 32, 32, 64),
    _shape(3, 32, 32, 32),
    _shape(5, 16, 16, 32),
    _shape(7, 8, 8, 96),
]
SHAPES = SMOKE_SHAPES if SMOKE else FULL_SHAPES


def _layer_arrays(layer: ConvLayerSpec, rng) -> tuple[np.ndarray, np.ndarray]:
    images = rng.standard_normal(
        (layer.batch, layer.c_in) + layer.image
    ).astype(np.float32)
    kernels = (
        rng.standard_normal((layer.c_in, layer.c_out) + layer.kernel) * 0.1
    ).astype(np.float32)
    return images, kernels


def _warm_seconds(engine, images, kernels, padding, repeats=REPEATS) -> float:
    """Best-of-N warm request latency through ``engine.run``."""
    for _ in range(WARMUP):
        engine.run(images, kernels, padding=padding)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        engine.run(images, kernels, padding=padding)
        best = min(best, time.perf_counter() - t0)
    return best


def _paired_warm_seconds(
    engines, images, kernels, padding, repeats=REPEATS
) -> list[float]:
    """Best-of-N warm latency per engine, with repeats *interleaved*
    across the engines so clock drift and background load hit both
    comparably (sub-millisecond shapes are otherwise dominated by it)."""
    for e in engines:
        for _ in range(WARMUP):
            e.run(images, kernels, padding=padding)
    best = [float("inf")] * len(engines)
    for _ in range(repeats):
        for i, e in enumerate(engines):
            t0 = time.perf_counter()
            e.run(images, kernels, padding=padding)
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def test_portfolio_auto_vs_winograd(results_dir, bench_header):
    rng = np.random.default_rng(7)
    records = []
    rows = []
    # One auto engine across the sweep (shared wisdom, like serving);
    # the pinned engine is the always-Winograd comparator.
    auto = ConvolutionEngine(algorithm="auto")
    wino = ConvolutionEngine(algorithm="winograd")
    for layer in SHAPES:
        images, kernels = _layer_arrays(layer, rng)
        wino_s, auto_s = _paired_warm_seconds(
            (wino, auto), images, kernels, layer.padding
        )
        decision = auto.algorithm_decisions()[-1]
        speedup = wino_s / auto_s
        records.append({
            "layer": layer.label,
            "r": layer.kernel[0],
            "batch": layer.batch,
            "channels": [layer.c_in, layer.c_out],
            "image": list(layer.image),
            "winograd_seconds": wino_s,
            "auto_seconds": auto_s,
            "auto_speedup": speedup,
            "decision": decision["algorithm"],
            "decision_source": decision["source"],
            "predicted": decision["predicted"],
            "measured": decision["measured"],
        })
        rows.append([
            layer.label, f"r={layer.kernel[0]}", decision["algorithm"],
            f"{wino_s * 1e3:.3f}", f"{auto_s * 1e3:.3f}", f"{speedup:.2f}x",
        ])

    # Warm dispatch overhead on a Winograd-winning shape: after the
    # memoized decision, "auto" adds one dict lookup per request.
    overhead_layer = next(
        (r for r in records if r["decision"] == "winograd"), records[0]
    )
    layer = next(l for l in SHAPES if l.label == overhead_layer["layer"])
    images, kernels = _layer_arrays(layer, rng)
    reps = REPEATS * (3 if SMOKE else 5)
    w, a = _paired_warm_seconds(
        (wino, auto), images, kernels, layer.padding, repeats=reps
    )
    overhead = a / w - 1.0

    print(f"\nAlgorithm portfolio: auto vs always-Winograd [real], "
          f"host cores: {os.cpu_count()}")
    print(format_table(
        ["shape", "regime", "auto chose", "wino_ms", "auto_ms", "speedup"],
        rows,
    ))
    print(f"warm auto dispatch overhead on {layer.label}: {overhead * 100:+.2f}%")

    payload = {
        **bench_header,
        "smoke": SMOKE,
        "repeats": REPEATS,
        "records": records,
        "dispatch_overhead_fraction": overhead,
        "dispatch_overhead_layer": layer.label,
    }
    out = results_dir / "BENCH_portfolio.json"
    out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {out}")

    # Gate 1: auto never loses to always-Winograd beyond noise.
    for r in records:
        assert r["auto_speedup"] >= 1 / 1.10, (
            f"auto lost to winograd on {r['layer']}: {r['auto_speedup']:.2f}x "
            f"(chose {r['decision']})"
        )
    # Gate 2: the crossover regimes actually pay off.
    wins = [
        r for r in records
        if r["decision"] != "winograd" and r["auto_speedup"] > 1.15
    ]
    need = 1 if SMOKE else 2
    assert len(wins) >= need, (
        f"expected >= {need} non-Winograd shapes beating Winograd by >1.15x, "
        f"got {[(r['layer'], round(r['auto_speedup'], 2)) for r in wins]}"
    )
    # Gate 3: warm dispatch overhead stays negligible (2% target; 5%
    # asserted to survive CI timer noise).
    assert overhead < 0.05, (
        f"warm auto dispatch overhead {overhead * 100:.1f}% exceeds 5%"
    )


def test_portfolio_decisions_persist(results_dir, tmp_path):
    """A second engine re-reading the wisdom skips probing entirely."""
    if SMOKE:
        pytest.skip("covered by the full run; redundant in smoke mode")
    layer = _shape(1, 16, 16, 32)
    rng = np.random.default_rng(0)
    images, kernels = _layer_arrays(layer, rng)
    path = tmp_path / "wisdom.json"
    e1 = ConvolutionEngine(algorithm="auto", wisdom_path=path)
    e1.run(images, kernels, padding=layer.padding)
    e1.save_wisdom()
    e2 = ConvolutionEngine(algorithm="auto", wisdom_path=path)
    e2.run(images, kernels, padding=layer.padding)
    (decision,) = e2.algorithm_decisions()
    assert decision["source"] == "wisdom"
