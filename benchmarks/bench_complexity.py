"""E19 (extension) -- arithmetic-complexity ledger for Table-2 layers.

The theoretical per-tile reduction (Sec. 2.2: ``prod(m*r) / prod(m+r-1)``)
versus the *effective* reduction once tile padding and transform
multiplications are charged (Sec. 5.1's two caveats), computed exactly
from the generated codelets.  No machine model involved -- this is pure
operation counting.
"""

from __future__ import annotations

from conftest import format_table, write_csv
from repro.core.complexity import direct_counts, effective_reduction, winograd_counts
from repro.core.fmr import FmrSpec
from repro.nets.layers import TABLE2_LAYERS


def test_complexity_ledger(benchmark, results_dir):
    """[exact] Theoretical vs effective multiplication reduction."""

    def build():
        rows = []
        for layer in TABLE2_LAYERS:
            ms = (2, 4, 6) if layer.ndim == 2 else (2, 4)
            for m in ms:
                fmr = FmrSpec.uniform(layer.ndim, m, 3)
                eff = effective_reduction(layer, fmr)
                rows.append(
                    [
                        layer.label,
                        str(fmr),
                        f"{fmr.multiplication_reduction:.2f}",
                        f"{eff:.2f}",
                        f"{eff / fmr.multiplication_reduction * 100:.0f}%",
                    ]
                )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["layer", "F(m,r)", "theoretical_x", "effective_x", "realized"]
    print("\nArithmetic complexity [exact] -- multiplication reduction vs direct")
    print(format_table(headers, rows))
    write_csv(results_dir / "complexity_ledger.csv", headers, rows)

    for r in rows:
        theo, eff = float(r[2]), float(r[3])
        # Effective is always positive and never exceeds theoretical.
        assert 0 < eff <= theo + 1e-9, r
    # The paper's Sec. 5.1 case: on VGG-5.2 (14x14) the realized share of
    # F(6^2)'s reduction collapses from tile padding ...
    vgg52 = {r[1]: float(r[4].rstrip("%")) for r in rows if r[0] == "VGG-5.2"}
    assert vgg52["F(6x6,3x3)"] < 70
    # ... while on VGG-3.2 (56x56, divisible extents) it stays high.
    vgg32 = {r[1]: float(r[4].rstrip("%")) for r in rows if r[0] == "VGG-3.2"}
    assert vgg32["F(4x4,3x3)"] > 80
