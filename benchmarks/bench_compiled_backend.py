"""E24 -- compiled C codelet backend vs warm fused-numpy [real].

The compiled backend lowers the three Winograd stages (and the blocked
stage-2 GEMM) to C compiled at plan time.  This bench answers the one
question that justifies its existence: on real Table-2 layer shapes,
how much faster is the compiled hot path than the warm fused-numpy
path it replaces?

Measurement protocol:

* every Table-2 layer (scaled to container size: batch=4, channels/4,
  image/4) runs through one :class:`Engine` per layer with both
  backends,
* both paths are **warm**: plan cached, kernel transform memoized (the
  FX path), compiled library already built -- the first run of each
  backend is discarded,
* timings are min-of-k from the engine's own tracer spans, at two
  levels: ``execute.fused`` / ``execute.compiled`` (executor level:
  the three stages, the work the C lowering replaces) and the
  ``request`` span (engine level: adds shared plumbing -- content
  fingerprint, cache lookups -- identical for both backends),
* every compiled result is checked against the float64
  direct-convolution oracle, and a repeated compiled run must be
  **bitwise identical** (fixed arithmetic order in the generated C).

Results land in ``results/BENCH_compiled.json`` with per-stage span
minima for both backends.  Acceptance gate: executor-level geomean
speedup >= 2.0x (skipped in smoke mode and on hosts without a C
toolchain, where the backend falls back to fused by design).

Set ``REPRO_BENCH_SMOKE=1`` for a quick CI run (three layers, smaller
scale, correctness + JSON only, no perf gate).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from conftest import format_table
from repro.core.compiled_backend import compiled_available
from repro.core.engine import ConvolutionEngine
from repro.core.fmr import FmrSpec
from repro.nets.layers import TABLE2_LAYERS
from repro.nets.reference import direct_convolution
from repro.obs.tracer import Tracer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Fused per-stage span -> compiled per-stage span.  stage1b never
#: shows up warm (the kernel transform is memoized away by both paths).
STAGE_SPANS = {
    "stage1": ("fused.stage1", "compiled.stage1"),
    "stage2": ("fused.stage2", "compiled.stage2"),
    "stage3": ("fused.stage3", "compiled.stage3"),
}


def _spec_for(layer) -> FmrSpec:
    # F(4,3) for 2-D layers, F(2,3) for 3-D: same choices the sequential
    # Table-2 benches use (tile sizes stay cache-resident).
    m = 4 if layer.ndim == 2 else 2
    return FmrSpec.uniform(layer.ndim, m, 3)


def _min_span_ms(tracer: Tracer, name: str, backend: str | None = None) -> float:
    spans = [
        s for s in tracer.spans(name)
        if backend is None or s.attrs.get("backend") == backend
    ]
    if not spans:
        return float("nan")
    return min(s.duration for s in spans) * 1e3


def _bench_layer(layer, repeats: int) -> dict:
    spec = _spec_for(layer)
    rng = np.random.default_rng(24)
    img = rng.standard_normal(
        (layer.batch, layer.c_in) + layer.image
    ).astype(np.float32)
    ker = (
        rng.standard_normal((layer.c_in, layer.c_out) + layer.kernel) * 0.1
    ).astype(np.float32)
    ref = direct_convolution(
        img.astype(np.float64), ker.astype(np.float64), layer.padding
    )
    ref_scale = float(np.abs(ref).max())

    tracer = Tracer()
    engine = ConvolutionEngine(tracer=tracer)
    try:
        kw = dict(fmr=spec, padding=layer.padding, dtype=np.float32)
        # Warm both paths: plan build, kernel-transform memo, compiled
        # library build/dlopen all happen here, outside the timed runs.
        y_fused = engine.run(img, ker, backend="fused", **kw)
        y_comp = engine.run(img, ker, backend="compiled", **kw)
        for label, y in (("fused", y_fused), ("compiled", y_comp)):
            relerr = float(np.abs(y.astype(np.float64) - ref).max() / ref_scale)
            assert relerr < 1e-3, f"{layer.label} {label}: relerr {relerr}"
        y_again = engine.run(img, ker, backend="compiled", **kw)
        assert np.array_equal(y_comp, y_again), (
            f"{layer.label}: compiled backend is not run-to-run deterministic"
        )
        relerr_compiled = float(
            np.abs(y_comp.astype(np.float64) - ref).max() / ref_scale
        )

        for _ in range(repeats):
            engine.run(img, ker, backend="fused", **kw)
            engine.run(img, ker, backend="compiled", **kw)
    finally:
        engine.close()

    exec_fused = _min_span_ms(tracer, "execute.fused")
    exec_comp = _min_span_ms(tracer, "execute.compiled")
    stages = {
        key: {"fused_ms": _min_span_ms(tracer, fspan),
              "compiled_ms": _min_span_ms(tracer, cspan)}
        for key, (fspan, cspan) in STAGE_SPANS.items()
    }
    return {
        "layer": layer.label,
        "network": layer.network,
        "shape": f"B{layer.batch} {layer.c_in}->{layer.c_out}"
                 f"@{'x'.join(map(str, layer.image))}",
        "spec": str(spec),
        "executor_fused_ms": exec_fused,
        "executor_compiled_ms": exec_comp,
        "executor_speedup": exec_fused / exec_comp,
        "engine_fused_ms": _min_span_ms(tracer, "request", backend="fused"),
        "engine_compiled_ms": _min_span_ms(tracer, "request", backend="compiled"),
        "stages": stages,
        "relerr_vs_direct": relerr_compiled,
        "deterministic": True,
    }


def test_compiled_backend_speedup(benchmark, results_dir, bench_header):
    """[real] compiled C stages vs warm fused-numpy across Table-2."""
    if not compiled_available():
        pytest.skip("no C toolchain/cffi: compiled backend falls back to fused")

    repeats = 2 if SMOKE else 7
    scaling = (
        dict(batch=1, channels_divisor=8, image_divisor=4)
        if SMOKE
        else dict(batch=4, channels_divisor=4, image_divisor=4)
    )
    layers = [lay.scaled(**scaling) for lay in TABLE2_LAYERS]
    if SMOKE:
        # One layer per network family keeps CI under a minute.
        seen, subset = set(), []
        for lay in layers:
            if lay.network not in seen:
                seen.add(lay.network)
                subset.append(lay)
        layers = subset

    def run():
        return [_bench_layer(lay, repeats) for lay in layers]

    records = benchmark.pedantic(run, rounds=1, iterations=1)

    speedups = [r["executor_speedup"] for r in records]
    geomean = float(np.exp(np.mean(np.log(speedups))))

    rows = [
        [r["layer"], r["shape"],
         f"{r['executor_fused_ms']:.2f}", f"{r['executor_compiled_ms']:.2f}",
         f"{r['executor_speedup']:.2f}",
         f"{r['engine_fused_ms'] / r['engine_compiled_ms']:.2f}",
         f"{r['relerr_vs_direct']:.1e}"]
        for r in records
    ]
    print(f"\nCompiled backend vs warm fused-numpy [real] -- Table-2 scaled "
          f"(batch={layers[0].batch}), host cores: {os.cpu_count()}")
    print(format_table(
        ["layer", "shape", "fused_ms", "compiled_ms", "exec_x",
         "engine_x", "relerr"],
        rows,
    ))
    print(f"executor-level geomean speedup: {geomean:.2f}x")

    payload = {
        **bench_header,
        "smoke": SMOKE,
        "scaling": scaling,
        "repeats": repeats,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "executor_geomean_speedup": geomean,
        "records": records,
    }
    out = results_dir / "BENCH_compiled.json"
    out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {out}")

    # Smoke layers are trimmed below the sizes where the C lowering's
    # advantage is meaningful; the full-size gate is the acceptance bar.
    if SMOKE:
        pytest.skip("smoke mode: JSON written, perf gate needs full-size layers")
    assert geomean >= 2.0, (
        f"compiled backend geomean speedup {geomean:.2f}x < 2.0x over "
        f"warm fused-numpy (per-layer: "
        + ", ".join(f"{r['layer']}={r['executor_speedup']:.2f}x" for r in records)
        + ")"
    )
