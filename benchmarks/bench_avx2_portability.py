"""E20 (extension) -- AVX2 portability (paper Sec. 6).

The conclusion claims the method ports to AVX2 "by providing specific
matrix multiplication routines; the rest of the code can be fully
reused".  This bench runs the same modelled pipeline on the generic
AVX2 spec and checks the port behaves sanely: the same mechanisms hold
(GEMM dominance, streaming-store gain), performance scales with the
machine's capabilities, and the smaller register file caps the viable
register blocking.
"""

from __future__ import annotations

from conftest import format_table, write_csv
from repro.core.blocking import BlockingConfig
from repro.core.fmr import FmrSpec
from repro.core.jit_gemm import MicrokernelSpec, microkernel_efficiency
from repro.machine.cost import WinogradCostModel
from repro.machine.spec import GENERIC_AVX2, KNL_7210
from repro.nets.layers import get_layer

LAYER = get_layer("VGG", "4.2")
FMR = FmrSpec.uniform(2, 4, 3)


def test_avx2_pipeline_port(benchmark, results_dir):
    """[model] Same pipeline, two ISAs."""

    def build():
        rows = []
        for machine, blk in (
            (KNL_7210, BlockingConfig(n_blk=28, c_blk=128, cprime_blk=128)),
            (GENERIC_AVX2, BlockingConfig(n_blk=12, c_blk=64, cprime_blk=64,
                                          simd_width=8)),
        ):
            model = WinogradCostModel(machine, threads_per_core=2)
            cost = model.layer_cost(LAYER, FMR, blk)
            gemm = cost.stage("gemm")
            rows.append(
                [
                    machine.name,
                    f"{machine.peak_flops / 1e12:.2f}",
                    f"{cost.seconds * 1e3:.2f}",
                    f"{gemm.seconds / cost.seconds * 100:.0f}%",
                    f"{cost.flops / cost.seconds / machine.peak_flops * 100:.0f}%",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["machine", "peak_TF", "time_ms", "gemm_share", "peak_util"]
    print("\nAVX2 portability [model] -- VGG 4.2, F(4^2,3^2)")
    print(format_table(headers, rows))
    write_csv(results_dir / "avx2_port.csv", headers, rows)

    knl_t, avx2_t = float(rows[0][2]), float(rows[1][2])
    flops_gap = KNL_7210.peak_flops / GENERIC_AVX2.peak_flops
    # AVX2 is slower roughly in proportion to its capability gap
    # (within 3x either way -- the AVX2 box is also bandwidth-starved).
    assert flops_gap / 3 < avx2_t / knl_t < flops_gap * 3
    # GEMM dominates on both ISAs (the structure ports).
    assert all(float(r[3].rstrip("%")) > 50 for r in rows)


def test_avx2_register_blocking_cap(benchmark, results_dir):
    """[model] The 16-register file caps n_blk on AVX2."""

    def build():
        rows = []
        for n_blk in (6, 10, 13, 16, 20, 24):
            mk = MicrokernelSpec(
                n_blk=n_blk, c_blk=64, cprime_blk=64, beta=1, simd_width=8
            )
            rows.append(
                [
                    n_blk,
                    f"{microkernel_efficiency(mk, GENERIC_AVX2):.2f}",
                    f"{microkernel_efficiency(mk, KNL_7210):.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["n_blk", "avx2_eff", "avx512_eff"]
    print("\nRegister-blocking cap [model] -- 64x64 microkernel")
    print(format_table(headers, rows))
    write_csv(results_dir / "avx2_registers.csv", headers, rows)

    eff = {r[0]: float(r[1]) for r in rows}
    # Efficiency collapses past the 16-register file (13 + 1 + 2 = 16).
    assert eff[13] > 1.3 * eff[20]
    # On AVX-512 the same n_blk values all fit.
    eff512 = {r[0]: float(r[2]) for r in rows}
    assert eff512[20] >= eff512[13] * 0.9
