"""E12 (extension) -- per-stage time breakdown, training vs inference.

Supports two textual claims around Fig. 5:

* "For most of the layers, the kernel transformations only require a
  small percentage of the total execution time.  However, for layers
  with a large number of input/output channels, the kernel
  transformations can take significant time ... especially when the
  batch size is one.  This is notable for FusionNet (layers 4.2 and
  5.2)."
* Stage 2 (GEMM) dominates, which is why the JIT GEMM is the paper's
  central optimization.
"""

from __future__ import annotations

from conftest import format_table, write_csv
from repro.core.blocking import BlockingConfig
from repro.core.fmr import FmrSpec
from repro.machine.cost import WinogradCostModel
from repro.machine.spec import KNL_7210
from repro.nets.layers import TABLE2_LAYERS

def layer_blocking(layer):
    """64x64 where the channels allow it, else the largest legal block."""
    return BlockingConfig(
        n_blk=28,
        c_blk=min(64, layer.c_in),
        cprime_blk=min(64, layer.c_out),
    )


def test_stage_breakdown(benchmark, results_dir):
    """[model] Stage shares per Table-2 layer with F(4,3) tiles."""

    def build():
        model = WinogradCostModel(KNL_7210, threads_per_core=2)
        rows = []
        for layer in TABLE2_LAYERS:
            fmr = FmrSpec.uniform(layer.ndim, 4, 3)
            cost = model.layer_cost(layer, fmr, layer_blocking(layer))
            total = cost.seconds
            shares = {
                s.name: s.seconds / total for s in cost.stages
            }
            rows.append(
                [
                    layer.label,
                    f"{total * 1e3:.2f}",
                    f"{shares['input_transform'] * 100:.1f}%",
                    f"{shares['kernel_transform'] * 100:.1f}%",
                    f"{shares['gemm'] * 100:.1f}%",
                    f"{shares['inverse_transform'] * 100:.1f}%",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["layer", "total_ms", "input_tf", "kernel_tf", "gemm", "inverse_tf"]
    print("\nStage breakdown [model] -- F(4,3) tiles, 64x64 blocking")
    print(format_table(headers, rows))
    write_csv(results_dir / "stage_breakdown.csv", headers, rows)

    shares = {r[0]: [float(x.rstrip("%")) for x in r[2:]] for r in rows}

    # GEMM dominates on every layer.
    for label, (it, kt, gemm, inv) in shares.items():
        assert gemm == max(it, kt, gemm, inv), label

    # Kernel transform share: small for big-batch VGG, significant for
    # batch-1 many-channel FusionNet 4.2/5.2.
    assert shares["VGG-1.2"][1] < 2.0
    assert shares["FusionNet-5.2"][1] > 5.0
    assert shares["FusionNet-5.2"][1] > 4 * shares["VGG-4.2"][1]
